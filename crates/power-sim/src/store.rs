//! Memoized simulation products.
//!
//! Every experiment in the reproduction pipeline ultimately asks the engine
//! for one of three products of the *same* underlying sweep: a system
//! trace, per-node window averages, or a metered-subset trace. Before this
//! module existed each call site re-ran the full node loop — the gaming
//! interval scan, `power-method::measure`, the power-meter campaigns and
//! the `power-repro` drivers all redid identical work.
//!
//! [`TraceStore`] closes that gap: it memoizes [`RunProducts`] behind a key
//! that fingerprints the complete simulation identity —
//!
//! * the machine (the full [`ClusterSpec`](crate::ClusterSpec), via its
//!   `Debug` rendering: node composition, variability model, governor, fan
//!   policy, ambient gradient, build seed);
//! * the workload (name, phase structure, total flops, and utilization
//!   sampled at a deterministic probe grid of `(node, t)` points — trait
//!   objects cannot be hashed structurally);
//! * the load-balance policy;
//! * the engine configuration *except* `threads`, which never affects
//!   results, only wall-clock time.
//!
//! Within one key, a cached entry serves any request it subsumes: a
//! system-only request is satisfied by any full-sweep entry, repeated
//! window averages hit as long as the window matches, and subset requests
//! hit on an identical node set. Entries are `Arc`-shared, so serving a
//! hit costs one atomic increment.
//!
//! The key deliberately ignores anything about *how* the products will be
//! queried afterwards: O(1) window queries on the returned traces (see
//! [`crate::trace`]) make one cached sweep answer arbitrarily many
//! downstream window questions.
//!
//! # Serving-layer extensions
//!
//! Long-running servers (see the `power-serve` crate) put two additional
//! demands on the store that batch drivers never did:
//!
//! * **Single-flight coalescing** — N concurrent requests for the same
//!   uncached sweep must trigger exactly one simulation. The first caller
//!   becomes the *leader* and simulates; the rest wait on a per-request
//!   flight and are then served from cache (counted in
//!   [`CacheStats::coalesced`]). If the leader fails, a waiter takes over,
//!   so errors never strand followers.
//! * **An LRU capacity bound** — [`TraceStore::bounded`] caps the number
//!   of cached sweeps; inserting past the cap evicts the
//!   least-recently-used entry (counted in [`CacheStats::evictions`]).
//!   Eviction only ever forgets — a later request re-simulates and gets
//!   identical results — so subsumption-derived correctness is unaffected.
//!   The default remains unbounded, preserving batch behavior.
//! * **An optional disk tier** — [`TraceStore::with_archive`] attaches an
//!   [`ArchiveTier`] beneath the memory cache, making the lookup order
//!   memory LRU → disk archive → recompute. Freshly simulated products
//!   are written through to the archive ([`CacheStats::archive_writes`]);
//!   requests the memory tier cannot answer are tried against the archive
//!   before simulating ([`CacheStats::archive_hits`], a subset of `hits`),
//!   and [`TraceStore::warm_from_archive`] pre-populates the memory tier
//!   at startup. The tier is strictly opt-in: plain stores behave exactly
//!   as before, and archived products round-trip through a fixed-point
//!   quantization, so a tiered store may answer within one quantum
//!   (~1 mW) of a fresh simulation rather than bit-identically.

use crate::engine::{MeterScope, ProductRequest, RunProducts, Simulator};
use crate::trace::err_degenerate_window;
use crate::Result;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// FNV-1a, the workspace's standard cheap stable hash.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Fingerprints the simulation identity of `sim` (everything that can
/// change its results; see the module docs for what is included).
pub fn simulation_key(sim: &Simulator<'_>) -> u64 {
    let mut h = Fnv::new();
    h.write_bytes(format!("{:?}", sim.cluster().spec()).as_bytes());
    h.write_bytes(format!("{:?}", sim.balance()).as_bytes());

    let wl = sim.workload();
    h.write_bytes(wl.name().as_bytes());
    h.write_bytes(format!("{:?}", wl.phases()).as_bytes());
    h.write_f64(wl.total_flops());
    // Utilization probe: trait objects cannot be hashed structurally, so
    // sample the function on a deterministic grid. Workloads differing
    // only between probe points would collide, but every workload in this
    // workspace is smooth at the probe resolution.
    let n = sim.cluster().len();
    let total = wl.phases().total();
    for node in [0, n / 3, n / 2, (2 * n) / 3, n.saturating_sub(1)] {
        for k in 0..=8 {
            let t = total * k as f64 / 8.0;
            h.write_f64(wl.utilization(node, t));
        }
    }

    let cfg = sim.config();
    h.write_f64(cfg.dt);
    h.write_f64(cfg.noise_sigma);
    h.write_f64(cfg.common_noise_sigma);
    h.write_u64(cfg.seed);
    // cfg.threads deliberately excluded: it never affects results.
    h.finish()
}

/// Whether a cached entry answering `have` can serve a request for `want`.
fn subsumes(have: &ProductRequest, want: &ProductRequest) -> bool {
    if want.system && !have.system {
        return false;
    }
    if let Some(w) = want.averages_window {
        if have.averages_window != Some(w) {
            return false;
        }
    }
    if let Some(s) = &want.subset {
        if have.subset.as_ref() != Some(s) {
            return false;
        }
    }
    true
}

/// A window aggregate answered without materializing a full
/// [`RunProducts`] — the result of [`TraceStore::window_aggregate`],
/// whether it came from a cached trace's prefix sums or from the archive
/// tier's pruned scan over compressed block summaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowAggregate {
    /// Average power over the (clipped) window, watts.
    pub average_w: f64,
    /// Energy over the (clipped) window, joules.
    pub energy_j: f64,
    /// Time of the trace's first sample, seconds.
    pub t0: f64,
    /// Sample interval, seconds.
    pub dt: f64,
    /// Samples in the trace the window was evaluated against.
    pub steps: u64,
    /// Compressed blocks in the series (0 when answered from memory).
    pub blocks_total: u64,
    /// Boundary blocks the pruned path had to decode.
    pub blocks_decoded: u64,
    /// Blocks answered from their header summary or never read.
    pub blocks_skipped: u64,
}

impl WindowAggregate {
    /// End time of the underlying trace (one interval past the last
    /// sample), matching [`crate::SystemTrace::t_end`].
    pub fn t_end(&self) -> f64 {
        self.t0 + self.steps as f64 * self.dt
    }
}

/// A second storage tier beneath the in-memory cache: typically an
/// on-disk archive (see the `power-archive` crate), but any durable
/// keyed store works.
///
/// Implementations are best-effort: `fetch` returns `None` (and `store`
/// silently drops the write) on any internal failure, so a degraded
/// archive degrades the store to recompute-on-miss, never to an error.
/// Both methods are called outside the store's entry lock and must be
/// safe to call concurrently.
pub trait ArchiveTier: Send + Sync {
    /// Return archived products answering `request` under `key`, if the
    /// tier holds them (exactly or derivably).
    fn fetch(&self, key: u64, request: &ProductRequest) -> Option<RunProducts>;

    /// Persist freshly simulated products for `request` under `key`.
    fn store(&self, key: u64, request: &ProductRequest, products: &RunProducts);

    /// Decode every archived product for warm-on-startup, as `(key,
    /// products)` pairs in unspecified order.
    fn warm(&self) -> Vec<(u64, RunProducts)>;

    /// Answer a `[from, to)` window aggregate for `key`'s system trace at
    /// `scope` straight off archived block summaries, decoding at most
    /// the boundary blocks — without materializing the full products.
    ///
    /// `None` means the tier cannot answer (no archived series, or any
    /// internal failure — torn data degrades to the decoded path, never
    /// to an error). `Some(Err(_))` is a *semantic* verdict: the window
    /// is degenerate or does not overlap the archived trace, with the
    /// same error the in-memory trace methods return. The default
    /// implementation answers nothing.
    fn window_aggregate(
        &self,
        _key: u64,
        _scope: MeterScope,
        _from: f64,
        _to: f64,
    ) -> Option<Result<WindowAggregate>> {
        None
    }
}

/// Cache-effectiveness counters for a [`TraceStore`], as reported by
/// [`TraceStore::stats`]. Live drivers and measurement campaigns surface
/// these so "how much simulation did the cache save" is a first-class
/// output of every experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests served from cache (including derived hits).
    pub hits: u64,
    /// Requests served by deriving from a cached full sweep's retained
    /// series instead of re-simulating (a subset of `hits`).
    pub derived: u64,
    /// Requests that had to simulate.
    pub misses: u64,
    /// Requests that waited on an identical in-flight simulation instead
    /// of starting their own (a subset of `hits`).
    pub coalesced: u64,
    /// Entries evicted by the LRU capacity bound.
    pub evictions: u64,
    /// Requests served by decoding from the attached archive tier
    /// instead of re-simulating (a subset of `hits`).
    pub archive_hits: u64,
    /// Freshly simulated products written through to the archive tier.
    pub archive_writes: u64,
    /// Window aggregates answered by the archive tier's pruned scan over
    /// block summaries, without materializing products in the LRU.
    pub archive_pruned_queries: u64,
    /// Compressed blocks pruned-scan queries skipped (answered from the
    /// header summary or never read) instead of decoding.
    pub blocks_skipped: u64,
    /// Cached sweeps currently held.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of requests served without simulating; 0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits ({} derived, {} coalesced, {} archive) / {} misses ({:.0}% hit rate, {} entries, {} evicted, {} archived, {} pruned / {} blocks skipped)",
            self.hits,
            self.derived,
            self.coalesced,
            self.archive_hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.entries,
            self.evictions,
            self.archive_writes,
            self.archive_pruned_queries,
            self.blocks_skipped
        )
    }
}

/// One cached sweep plus its recency stamp for LRU eviction.
struct Entry {
    key: u64,
    products: Arc<RunProducts>,
    last_used: u64,
}

/// A single in-flight simulation other callers can wait on.
struct Flight {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        while !*done {
            done = self.cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn finish(&self) {
        *self.done.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.cv.notify_all();
    }
}

/// Removes the leader's flight from the in-flight map and wakes waiters
/// when the leader is done — on success, error, and unwind alike, so a
/// failing leader can never strand its followers.
struct FlightGuard<'a> {
    store: &'a TraceStore,
    fingerprint: u64,
    flight: Arc<Flight>,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        self.store
            .inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&self.fingerprint);
        self.flight.finish();
    }
}

/// Fingerprints a `(simulation key, product request)` pair — the identity
/// single-flight coalescing groups concurrent callers by, and the stable
/// per-blob identity an [`ArchiveTier`] stores entries under.
pub fn request_fingerprint(key: u64, request: &ProductRequest) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(key);
    h.write_bytes(format!("{request:?}").as_bytes());
    h.finish()
}

/// A keyed cache of [`RunProducts`]; see the module docs.
#[derive(Default)]
pub struct TraceStore {
    entries: Mutex<Vec<Entry>>,
    /// Entry cap; `None` is unbounded (the batch-pipeline default).
    capacity: Option<usize>,
    /// Monotonic recency clock for LRU stamps.
    clock: AtomicU64,
    inflight: Mutex<HashMap<u64, Arc<Flight>>>,
    /// Optional disk tier; see [`ArchiveTier`] and the module docs.
    archive: Option<Arc<dyn ArchiveTier>>,
    hits: AtomicU64,
    derived: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
    archive_hits: AtomicU64,
    archive_writes: AtomicU64,
    archive_pruned_queries: AtomicU64,
    blocks_skipped: AtomicU64,
}

impl TraceStore {
    /// An empty, unbounded store.
    pub fn new() -> Self {
        TraceStore::default()
    }

    /// An empty store holding at most `max_entries` cached sweeps,
    /// evicting least-recently-used entries past the cap. Long-running
    /// servers use this so the cache cannot grow without limit.
    pub fn bounded(max_entries: usize) -> Self {
        TraceStore {
            capacity: Some(max_entries.max(1)),
            ..TraceStore::default()
        }
    }

    /// The configured entry cap, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Attaches a disk tier beneath the memory cache; see the module
    /// docs for the resulting lookup order and counters.
    pub fn with_archive(mut self, archive: Arc<dyn ArchiveTier>) -> Self {
        self.archive = Some(archive);
        self
    }

    /// Whether a disk tier is attached.
    pub fn has_archive(&self) -> bool {
        self.archive.is_some()
    }

    /// Pre-populates the memory tier with every product the attached
    /// archive holds (respecting the LRU capacity bound) and returns how
    /// many entries were loaded. A no-op without an archive. Warm loads
    /// are not counted as hits — they happened before any request.
    pub fn warm_from_archive(&self) -> usize {
        let Some(archive) = &self.archive else {
            return 0;
        };
        let warmed = archive.warm();
        let count = warmed.len();
        for (key, products) in warmed {
            self.insert(key, Arc::new(products));
        }
        count
    }

    /// The process-wide shared store. Drivers and library call sites that
    /// want cross-experiment sharing should use this one; tests that need
    /// isolation should construct their own with [`TraceStore::new`].
    pub fn global() -> &'static TraceStore {
        static GLOBAL: OnceLock<TraceStore> = OnceLock::new();
        GLOBAL.get_or_init(TraceStore::new)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Entry>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn stamp(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Exact-subsumption lookup, bumping the hit entry's recency.
    fn lookup(&self, key: u64, request: &ProductRequest) -> Option<Arc<RunProducts>> {
        let stamp = self.stamp();
        let mut entries = self.lock();
        entries
            .iter_mut()
            .find(|e| e.key == key && subsumes(e.products.request(), request))
            .map(|e| {
                e.last_used = stamp;
                Arc::clone(&e.products)
            })
    }

    /// Inserts `products` under `key`, evicting LRU entries past the cap.
    /// Must be called with fresh products only (never with an Arc already
    /// in the store).
    fn insert(&self, key: u64, products: Arc<RunProducts>) {
        let stamp = self.stamp();
        let mut entries = self.lock();
        entries.push(Entry {
            key,
            products,
            last_used: stamp,
        });
        if let Some(cap) = self.capacity {
            while entries.len() > cap {
                let oldest = entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(i, _)| i)
                    .expect("non-empty over cap");
                entries.swap_remove(oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Returns the products for `request` under `sim`, simulating only on
    /// a cache miss.
    ///
    /// Validation always runs (a cached entry is never returned for a
    /// request the engine would reject), so error behaviour is identical
    /// with and without the store.
    ///
    /// Concurrent identical requests are coalesced: one caller simulates,
    /// the rest block until the sweep lands and are then served from
    /// cache.
    pub fn products(
        &self,
        sim: &Simulator<'_>,
        request: &ProductRequest,
    ) -> Result<Arc<RunProducts>> {
        let key = simulation_key(sim);
        let fingerprint = request_fingerprint(key, request);
        let mut waited = false;
        loop {
            if let Some(products) = self.lookup(key, request) {
                // Re-validate so a hit cannot mask an invalid request.
                sim.validate_request(request)?;
                self.hits.fetch_add(1, Ordering::Relaxed);
                if waited {
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                }
                return Ok(products);
            }
            // Miss: join the in-flight simulation for this exact request
            // if one exists, otherwise become its leader.
            let mut lead = None;
            let follow = {
                let mut inflight = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
                match inflight.get(&fingerprint) {
                    Some(flight) => Some(Arc::clone(flight)),
                    None => {
                        let flight = Arc::new(Flight::new());
                        inflight.insert(fingerprint, Arc::clone(&flight));
                        lead = Some(flight);
                        None
                    }
                }
            };
            if let Some(flight) = follow {
                flight.wait();
                // The leader either cached the entry (next lookup hits and
                // counts us as coalesced) or failed (we take over as
                // leader on the next iteration).
                waited = true;
                continue;
            }
            let _guard = FlightGuard {
                store: self,
                fingerprint,
                flight: lead.expect("leader holds its flight"),
            };
            return self.products_uncoalesced(sim, key, request);
        }
    }

    /// The pre-coalescing miss path: derive from a cached full sweep or
    /// simulate, then cache the result.
    fn products_uncoalesced(
        &self,
        sim: &Simulator<'_>,
        key: u64,
        request: &ProductRequest,
    ) -> Result<Arc<RunProducts>> {
        // A cached full sweep (one that retained per-sample series for
        // every node) can *derive* window averages for any window and
        // traces for any sub-subset without re-simulating. Validate first
        // so derivation cannot mask an invalid request.
        sim.validate_request(request)?;
        let derived = {
            let entries = self.lock();
            entries
                .iter()
                .filter(|e| e.key == key)
                .find_map(|e| e.products.try_derive(request))
        };
        if let Some(products) = derived {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.derived.fetch_add(1, Ordering::Relaxed);
            let products = Arc::new(products);
            // Cache the derived entry so later identical requests hit the
            // exact-subsumption fast path.
            self.insert(key, Arc::clone(&products));
            return Ok(products);
        }
        // Second tier: the disk archive, before paying for a simulation.
        if let Some(archive) = &self.archive {
            if let Some(products) = archive.fetch(key, request) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.archive_hits.fetch_add(1, Ordering::Relaxed);
                let products = Arc::new(products);
                self.insert(key, Arc::clone(&products));
                return Ok(products);
            }
        }
        let products = Arc::new(sim.run_products(request)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Write-through: only genuinely simulated products are archived
        // (derived and decoded ones are already recoverable from the
        // entries that produced them).
        if let Some(archive) = &self.archive {
            archive.store(key, request, &products);
            self.archive_writes.fetch_add(1, Ordering::Relaxed);
        }
        // A concurrent non-identical miss may have inserted a subsuming
        // entry meanwhile; prefer the existing one so repeated lookups
        // share a single allocation.
        if let Some(existing) = self.lookup(key, request) {
            return Ok(existing);
        }
        self.insert(key, Arc::clone(&products));
        Ok(products)
    }

    /// Answer a `[from, to)` window aggregate over `sim`'s system trace
    /// at `scope` without materializing a full [`RunProducts`] for cold
    /// data: a cached trace answers in O(1) off its prefix sums (counted
    /// as a hit); otherwise the archive tier's pruned scan combines
    /// whole-block summaries and decodes at most the two boundary blocks
    /// (counted in [`CacheStats::archive_pruned_queries`] /
    /// [`CacheStats::blocks_skipped`]), deliberately *not* populating
    /// the LRU.
    ///
    /// `None` means neither tier can answer — fall back to
    /// [`TraceStore::products`]. `Some(Err(_))` carries the same window
    /// errors [`crate::SystemTrace::window_average`] returns.
    pub fn window_aggregate(
        &self,
        sim: &Simulator<'_>,
        scope: MeterScope,
        from: f64,
        to: f64,
    ) -> Option<Result<WindowAggregate>> {
        if !(to > from) {
            // Same up-front verdict every trace method gives; answering
            // here spares an entire simulation on the fallback path.
            return Some(Err(err_degenerate_window()));
        }
        let key = simulation_key(sim);
        let from_memory = {
            let stamp = self.stamp();
            let mut entries = self.lock();
            entries
                .iter_mut()
                .find(|e| e.key == key && e.products.system_trace(scope).is_some())
                .map(|e| {
                    e.last_used = stamp;
                    Arc::clone(&e.products)
                })
        };
        if let Some(products) = from_memory {
            let trace = products.system_trace(scope).expect("matched above");
            let result = trace.window_average(from, to).and_then(|average_w| {
                let energy_j = trace.window_energy(from, to)?;
                Ok(WindowAggregate {
                    average_w,
                    energy_j,
                    t0: trace.t0,
                    dt: trace.dt,
                    steps: trace.len() as u64,
                    blocks_total: 0,
                    blocks_decoded: 0,
                    blocks_skipped: 0,
                })
            });
            if result.is_ok() {
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
            return Some(result);
        }
        let archive = self.archive.as_ref()?;
        let result = archive.window_aggregate(key, scope, from, to)?;
        self.archive_pruned_queries.fetch_add(1, Ordering::Relaxed);
        if let Ok(agg) = &result {
            self.blocks_skipped
                .fetch_add(agg.blocks_skipped, Ordering::Relaxed);
        }
        Some(result)
    }

    /// Number of cached sweeps.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Drops every cached sweep (e.g. between unrelated campaigns).
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// Requests served from cache since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that had to simulate since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Requests served by derivation from a cached full sweep.
    pub fn derived(&self) -> u64 {
        self.derived.load(Ordering::Relaxed)
    }

    /// Requests that waited on an identical in-flight simulation.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Entries evicted by the LRU capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Requests served by decoding from the attached archive tier.
    pub fn archive_hits(&self) -> u64 {
        self.archive_hits.load(Ordering::Relaxed)
    }

    /// Freshly simulated products written through to the archive tier.
    pub fn archive_writes(&self) -> u64 {
        self.archive_writes.load(Ordering::Relaxed)
    }

    /// Window aggregates answered by the archive tier's pruned scan.
    pub fn archive_pruned_queries(&self) -> u64 {
        self.archive_pruned_queries.load(Ordering::Relaxed)
    }

    /// Compressed blocks pruned-scan queries skipped instead of decoding.
    pub fn blocks_skipped(&self) -> u64 {
        self.blocks_skipped.load(Ordering::Relaxed)
    }

    /// A consistent snapshot of the cache-effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits(),
            derived: self.derived(),
            misses: self.misses(),
            coalesced: self.coalesced(),
            evictions: self.evictions(),
            archive_hits: self.archive_hits(),
            archive_writes: self.archive_writes(),
            archive_pruned_queries: self.archive_pruned_queries(),
            blocks_skipped: self.blocks_skipped(),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{MeterScope, SimulationConfig};
    use crate::systems::SystemPreset;
    use power_workload::{Firestarter, LoadBalance, RunPhases};

    fn fixture() -> (crate::Cluster, Firestarter, SimulationConfig) {
        let preset = SystemPreset::trace_presets()
            .into_iter()
            .find(|p| p.name == "L-CSC")
            .expect("L-CSC trace preset exists")
            .with_total_nodes(24);
        let cluster = crate::Cluster::build(preset.cluster_spec).unwrap();
        let phases = RunPhases::core_only(200.0).unwrap();
        let wl = Firestarter::new(phases);
        let mut cfg = SimulationConfig::one_hertz(11);
        cfg.dt = 5.0;
        (cluster, wl, cfg)
    }

    #[test]
    fn one_sweep_serves_every_product_and_scope() {
        let (cluster, wl, cfg) = fixture();
        let sim = Simulator::new(&cluster, &wl, LoadBalance::Balanced, cfg).unwrap();
        let store = TraceStore::new();

        let full = ProductRequest::with_averages(20.0, 200.0).and_subset(&[1, 2, 3]);
        let products = store.products(&sim, &full).unwrap();
        assert_eq!(store.misses(), 1);

        // System-only, same-window averages, and same-subset requests all
        // hit the one cached sweep, for every scope.
        for scope in MeterScope::ALL {
            let p = store
                .products(&sim, &ProductRequest::system_only())
                .unwrap();
            assert!(p.system_trace(scope).is_some());
            let p = store
                .products(&sim, &ProductRequest::with_averages(20.0, 200.0))
                .unwrap();
            assert!(p.node_averages(scope).is_some());
            let p = store
                .products(&sim, &ProductRequest::subset_only(&[1, 2, 3]))
                .unwrap();
            assert!(p.subset_trace(scope).is_some());
        }
        assert_eq!(store.misses(), 1, "no further sweeps ran");
        assert_eq!(store.hits(), 9);
        assert_eq!(store.len(), 1);
        assert!(Arc::ptr_eq(
            &products,
            &store
                .products(&sim, &ProductRequest::system_only())
                .unwrap()
        ));
    }

    #[test]
    fn key_distinguishes_simulation_identity_but_not_threads() {
        let (cluster, wl, cfg) = fixture();
        let sim = Simulator::new(&cluster, &wl, LoadBalance::Balanced, cfg).unwrap();
        let key = simulation_key(&sim);

        let mut other_threads = cfg;
        other_threads.threads = cfg.threads + 7;
        let sim_t = Simulator::new(&cluster, &wl, LoadBalance::Balanced, other_threads).unwrap();
        assert_eq!(
            key,
            simulation_key(&sim_t),
            "threads must not change the key"
        );

        let mut other_seed = cfg;
        other_seed.seed += 1;
        let sim_s = Simulator::new(&cluster, &wl, LoadBalance::Balanced, other_seed).unwrap();
        assert_ne!(key, simulation_key(&sim_s));

        let sim_b =
            Simulator::new(&cluster, &wl, LoadBalance::Uneven { spread: 0.2 }, cfg).unwrap();
        assert_ne!(key, simulation_key(&sim_b));

        let other_wl = Firestarter::new(RunPhases::core_only(400.0).unwrap());
        let sim_w = Simulator::new(&cluster, &other_wl, LoadBalance::Balanced, cfg).unwrap();
        assert_ne!(key, simulation_key(&sim_w));
    }

    #[test]
    fn different_windows_and_subsets_are_separate_entries() {
        let (cluster, wl, cfg) = fixture();
        let sim = Simulator::new(&cluster, &wl, LoadBalance::Balanced, cfg).unwrap();
        let store = TraceStore::new();
        store
            .products(&sim, &ProductRequest::with_averages(0.0, 100.0))
            .unwrap();
        store
            .products(&sim, &ProductRequest::with_averages(100.0, 200.0))
            .unwrap();
        store
            .products(&sim, &ProductRequest::subset_only(&[0, 1]))
            .unwrap();
        store
            .products(&sim, &ProductRequest::subset_only(&[2, 3]))
            .unwrap();
        assert_eq!(store.misses(), 4);
        assert_eq!(store.len(), 4);
        store.clear();
        assert!(store.is_empty());
    }

    #[test]
    fn full_sweep_derives_window_averages_and_sub_subsets() {
        let (cluster, wl, cfg) = fixture();
        let sim = Simulator::new(&cluster, &wl, LoadBalance::Balanced, cfg).unwrap();
        let store = TraceStore::new();
        let all: Vec<usize> = (0..cluster.len()).collect();
        store
            .products(&sim, &ProductRequest::subset_only(&all))
            .unwrap();
        assert_eq!(store.misses(), 1);

        // A window-average request over a window never simulated for is
        // derived from the retained series — no second sweep.
        let p = store
            .products(&sim, &ProductRequest::with_averages(50.0, 150.0))
            .unwrap();
        assert_eq!(store.misses(), 1, "derivation must not re-simulate");
        assert_eq!(store.derived(), 1);
        let fresh = sim.node_averages(50.0, 150.0, MeterScope::Wall).unwrap();
        for (a, b) in p
            .node_averages(MeterScope::Wall)
            .unwrap()
            .iter()
            .zip(&fresh)
        {
            assert!(
                (a - b).abs() <= 1e-9 * (1.0 + b.abs()),
                "derived {a} vs swept {b}"
            );
        }
        // The system trace comes from aggregating the retained series.
        let derived_sys = p.system_trace(MeterScope::Dc).unwrap();
        let fresh_sys = sim.system_trace(MeterScope::Dc).unwrap();
        for (a, b) in derived_sys.watts.iter().zip(&fresh_sys.watts) {
            assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()), "{a} vs {b}");
        }

        // A scrambled sub-subset is sliced out of the retained rows —
        // bit-identical to simulating just those nodes.
        let p = store
            .products(&sim, &ProductRequest::subset_only(&[9, 2, 17]))
            .unwrap();
        assert_eq!(store.misses(), 1);
        assert_eq!(store.derived(), 2);
        let direct = sim.subset_trace(&[9, 2, 17], MeterScope::Dc).unwrap();
        assert_eq!(p.subset_trace(MeterScope::Dc).unwrap(), &direct);

        // Derived entries are cached: the same request again is a plain hit.
        store
            .products(&sim, &ProductRequest::subset_only(&[9, 2, 17]))
            .unwrap();
        assert_eq!(store.derived(), 2);

        let stats = store.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.derived, 2);
        assert_eq!(stats.hits, 3);
        assert!(stats.hit_rate() > 0.7);
        assert_eq!(stats.entries, store.len());
        let shown = format!("{stats}");
        assert!(shown.contains("derived"), "{shown}");

        // Invalid windows are rejected before derivation is attempted.
        assert!(store
            .products(&sim, &ProductRequest::with_averages(5000.0, 6000.0))
            .is_err());
    }

    #[test]
    fn prefix_subset_entry_cannot_answer_machine_wide_requests() {
        // Regression: a cached subset over node ids 0..k of a larger
        // machine used to be mistaken for a full sweep, serving k-node
        // aggregates as machine-wide system traces and window averages.
        let (cluster, wl, cfg) = fixture();
        let n = cluster.len();
        assert!(n > 3, "fixture machine must exceed the prefix subset");
        let sim = Simulator::new(&cluster, &wl, LoadBalance::Balanced, cfg).unwrap();
        let store = TraceStore::new();
        store
            .products(&sim, &ProductRequest::subset_only(&[0, 1, 2]))
            .unwrap();
        assert_eq!(store.misses(), 1);
        let p = store
            .products(&sim, &ProductRequest::with_averages(50.0, 150.0))
            .unwrap();
        assert_eq!(store.misses(), 2, "prefix subset must not derive averages");
        assert_eq!(p.node_averages(MeterScope::Wall).unwrap().len(), n);
        let fresh_store = TraceStore::new();
        fresh_store
            .products(&sim, &ProductRequest::subset_only(&[0, 1, 2]))
            .unwrap();
        let sys = fresh_store
            .products(&sim, &ProductRequest::system_only())
            .unwrap();
        assert_eq!(
            fresh_store.misses(),
            2,
            "prefix subset must not derive a system trace"
        );
        let direct = sim.system_trace(MeterScope::Wall).unwrap();
        assert_eq!(sys.system_trace(MeterScope::Wall).unwrap(), &direct);
    }

    #[test]
    fn partial_subset_entries_serve_contained_subsets() {
        let (cluster, wl, cfg) = fixture();
        let sim = Simulator::new(&cluster, &wl, LoadBalance::Balanced, cfg).unwrap();
        let store = TraceStore::new();
        store
            .products(&sim, &ProductRequest::subset_only(&[1, 2, 3, 4]))
            .unwrap();
        // Contained subset: derived. Window averages: NOT derivable from a
        // partial sweep — that needs every node's series.
        let p = store
            .products(&sim, &ProductRequest::subset_only(&[4, 2]))
            .unwrap();
        assert_eq!(store.misses(), 1);
        assert_eq!(
            p.subset_trace(MeterScope::Wall).unwrap().node_ids,
            vec![4, 2]
        );
        store
            .products(&sim, &ProductRequest::with_averages(50.0, 150.0))
            .unwrap();
        assert_eq!(store.misses(), 2, "partial sweep cannot answer averages");
        // Disjoint subset: must simulate.
        store
            .products(&sim, &ProductRequest::subset_only(&[7, 8]))
            .unwrap();
        assert_eq!(store.misses(), 3);
    }

    #[test]
    fn cached_hit_still_rejects_invalid_requests() {
        let (cluster, wl, cfg) = fixture();
        let sim = Simulator::new(&cluster, &wl, LoadBalance::Balanced, cfg).unwrap();
        let store = TraceStore::new();
        store
            .products(&sim, &ProductRequest::system_only())
            .unwrap();
        // Degenerate and out-of-run windows fail even though a full-sweep
        // entry exists.
        assert!(store
            .products(&sim, &ProductRequest::with_averages(50.0, 50.0))
            .is_err());
        assert!(store
            .products(&sim, &ProductRequest::with_averages(5000.0, 6000.0))
            .is_err());
    }

    #[test]
    fn concurrent_identical_requests_coalesce_to_one_simulation() {
        // Satellite: 16 threads request the same uncached sweep; exactly
        // one simulation runs, the other 15 wait on the flight and are
        // served from cache.
        let (cluster, wl, cfg) = fixture();
        let sim = Simulator::new(&cluster, &wl, LoadBalance::Balanced, cfg).unwrap();
        let store = TraceStore::new();
        let request = ProductRequest::with_averages(20.0, 200.0);
        let barrier = std::sync::Barrier::new(16);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..16)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        store.products(&sim, &request).unwrap()
                    })
                })
                .collect();
            let products: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            // Everyone got the same allocation.
            for p in &products[1..] {
                assert!(Arc::ptr_eq(&products[0], p));
            }
        });
        let stats = store.stats();
        assert_eq!(stats.misses, 1, "exactly one simulation ran");
        assert_eq!(stats.hits, 15);
        assert!(
            stats.coalesced <= 15,
            "coalesced counts a subset of the hits: {stats}"
        );
        assert_eq!(stats.entries, 1);
        // A sequential rerun is a plain (non-coalesced) hit.
        let before = store.coalesced();
        store.products(&sim, &request).unwrap();
        assert_eq!(store.coalesced(), before);
        assert_eq!(store.hits(), 16);
    }

    #[test]
    fn coalesced_followers_of_a_failed_leader_recover() {
        // An invalid request never caches anything; concurrent identical
        // invalid requests must all error out rather than deadlock on a
        // flight whose leader failed.
        let (cluster, wl, cfg) = fixture();
        let sim = Simulator::new(&cluster, &wl, LoadBalance::Balanced, cfg).unwrap();
        let store = TraceStore::new();
        let bad = ProductRequest::with_averages(5000.0, 6000.0);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| store.products(&sim, &bad)))
                .collect();
            for h in handles {
                assert!(h.join().unwrap().is_err());
            }
        });
        assert_eq!(store.misses(), 0);
        assert!(store.is_empty());
    }

    #[test]
    fn lru_bound_evicts_and_never_breaks_correctness() {
        // Satellite: a capacity-2 store cycling through three distinct
        // window requests must evict (counted), yet every answer must
        // stay identical to an unbounded store's.
        let (cluster, wl, cfg) = fixture();
        let sim = Simulator::new(&cluster, &wl, LoadBalance::Balanced, cfg).unwrap();
        let bounded = TraceStore::bounded(2);
        assert_eq!(bounded.capacity(), Some(2));
        let reference = TraceStore::new();
        let windows = [(0.0, 100.0), (50.0, 150.0), (100.0, 200.0)];
        for round in 0..3 {
            for &(from, to) in &windows {
                let req = ProductRequest::with_averages(from, to);
                let b = bounded.products(&sim, &req).unwrap();
                let r = reference.products(&sim, &req).unwrap();
                for scope in MeterScope::ALL {
                    assert_eq!(
                        b.node_averages(scope).unwrap(),
                        r.node_averages(scope).unwrap(),
                        "round {round} window {from}..{to}"
                    );
                    assert_eq!(
                        b.system_trace(scope).unwrap().watts,
                        r.system_trace(scope).unwrap().watts
                    );
                }
                assert!(bounded.len() <= 2, "cap respected");
            }
        }
        let stats = bounded.stats();
        assert!(
            stats.evictions > 0,
            "cycling 3 windows through cap 2 evicts"
        );
        assert_eq!(stats.hits + stats.misses, 9);
        // The unbounded reference simulated each window exactly once; the
        // bounded store re-simulated evicted windows but never returned a
        // wrong answer.
        assert_eq!(reference.stats().evictions, 0);
        assert_eq!(reference.misses(), 3);
        assert!(bounded.misses() >= 3);
    }

    #[test]
    fn lru_evicts_least_recently_used_entry() {
        let (cluster, wl, cfg) = fixture();
        let sim = Simulator::new(&cluster, &wl, LoadBalance::Balanced, cfg).unwrap();
        let store = TraceStore::bounded(2);
        let a = ProductRequest::with_averages(0.0, 100.0);
        let b = ProductRequest::with_averages(50.0, 150.0);
        let c = ProductRequest::with_averages(100.0, 200.0);
        store.products(&sim, &a).unwrap();
        store.products(&sim, &b).unwrap();
        // Touch `a` so `b` is now least recently used.
        store.products(&sim, &a).unwrap();
        store.products(&sim, &c).unwrap();
        assert_eq!(store.evictions(), 1);
        let misses = store.misses();
        store.products(&sim, &a).unwrap();
        assert_eq!(store.misses(), misses, "a stayed resident");
        store.products(&sim, &b).unwrap();
        assert_eq!(store.misses(), misses + 1, "b was the LRU victim");
    }

    /// In-memory stand-in for the on-disk archive tier, exercising the
    /// tiering contract without touching a filesystem.
    #[derive(Default)]
    struct MockArchive {
        blobs: Mutex<HashMap<(u64, u64), RunProducts>>,
    }

    impl ArchiveTier for MockArchive {
        fn fetch(&self, key: u64, request: &ProductRequest) -> Option<RunProducts> {
            let fingerprint = request_fingerprint(key, request);
            self.blobs.lock().unwrap().get(&(key, fingerprint)).cloned()
        }

        fn store(&self, key: u64, request: &ProductRequest, products: &RunProducts) {
            let fingerprint = request_fingerprint(key, request);
            self.blobs
                .lock()
                .unwrap()
                .insert((key, fingerprint), products.clone());
        }

        fn warm(&self) -> Vec<(u64, RunProducts)> {
            self.blobs
                .lock()
                .unwrap()
                .iter()
                .map(|(&(key, _), p)| (key, p.clone()))
                .collect()
        }
    }

    #[test]
    fn archive_tier_serves_restarted_stores_and_warms() {
        let (cluster, wl, cfg) = fixture();
        let sim = Simulator::new(&cluster, &wl, LoadBalance::Balanced, cfg).unwrap();
        let archive = Arc::new(MockArchive::default());
        let request = ProductRequest::with_averages(20.0, 200.0);

        // Cold store: simulates once, writes through to the archive.
        let store1 = TraceStore::new().with_archive(Arc::clone(&archive) as _);
        assert!(store1.has_archive());
        let p1 = store1.products(&sim, &request).unwrap();
        let s1 = store1.stats();
        assert_eq!((s1.misses, s1.archive_writes, s1.archive_hits), (1, 1, 0));
        // A repeat is a memory hit — no further archive traffic.
        store1.products(&sim, &request).unwrap();
        assert_eq!(store1.archive_hits(), 0);

        // "Restarted" store sharing the archive: served from disk tier,
        // no recompute, and the answer matches.
        let store2 = TraceStore::new().with_archive(Arc::clone(&archive) as _);
        let p2 = store2.products(&sim, &request).unwrap();
        let s2 = store2.stats();
        assert_eq!((s2.misses, s2.hits, s2.archive_hits), (0, 1, 1));
        assert_eq!(
            p1.node_averages(MeterScope::Wall).unwrap(),
            p2.node_averages(MeterScope::Wall).unwrap()
        );
        // The fetched entry landed in memory: a repeat stays local.
        store2.products(&sim, &request).unwrap();
        assert_eq!(store2.archive_hits(), 1);
        let shown = format!("{s2}");
        assert!(shown.contains("archive"), "{shown}");

        // Warm-on-startup pre-populates memory, so even the first
        // request is a plain hit.
        let store3 = TraceStore::new().with_archive(Arc::clone(&archive) as _);
        assert_eq!(store3.warm_from_archive(), 1);
        assert_eq!(store3.len(), 1);
        let p3 = store3.products(&sim, &request).unwrap();
        let s3 = store3.stats();
        assert_eq!((s3.misses, s3.hits, s3.archive_hits), (0, 1, 0));
        assert_eq!(
            p1.node_averages(MeterScope::Dc).unwrap(),
            p3.node_averages(MeterScope::Dc).unwrap()
        );

        // Plain stores are untouched by all of this.
        let plain = TraceStore::new();
        assert!(!plain.has_archive());
        assert_eq!(plain.warm_from_archive(), 0);
    }

    #[test]
    fn window_aggregate_memory_path_and_fallbacks() {
        let (cluster, wl, cfg) = fixture();
        let sim = Simulator::new(&cluster, &wl, LoadBalance::Balanced, cfg).unwrap();
        let store = TraceStore::new();
        // Degenerate windows are answered up front, no tier needed and
        // no simulation spent.
        assert!(matches!(
            store.window_aggregate(&sim, MeterScope::Wall, 10.0, 10.0),
            Some(Err(_))
        ));
        // Nothing cached and no archive: the store declines.
        assert!(store
            .window_aggregate(&sim, MeterScope::Wall, 0.0, 100.0)
            .is_none());
        assert_eq!(store.stats().hits, 0);

        // With a cached system trace the aggregate is a memory hit that
        // matches the trace's own O(1) answers exactly.
        let p = store
            .products(&sim, &ProductRequest::system_only())
            .unwrap();
        let agg = store
            .window_aggregate(&sim, MeterScope::Wall, 20.0, 180.0)
            .unwrap()
            .unwrap();
        let trace = p.system_trace(MeterScope::Wall).unwrap();
        assert_eq!(agg.average_w, trace.window_average(20.0, 180.0).unwrap());
        assert_eq!(agg.energy_j, trace.window_energy(20.0, 180.0).unwrap());
        assert_eq!(agg.steps, trace.len() as u64);
        assert_eq!(agg.t_end(), trace.t_end());
        assert_eq!(agg.blocks_total, 0);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.archive_pruned_queries, 0);

        // A window outside the run errors like the trace methods do.
        assert!(matches!(
            store.window_aggregate(&sim, MeterScope::Wall, 5000.0, 6000.0),
            Some(Err(_))
        ));

        // An archive tier using the default window_aggregate keeps the
        // store declining cold windows rather than failing.
        let tiered = TraceStore::new().with_archive(Arc::new(MockArchive::default()) as _);
        assert!(tiered
            .window_aggregate(&sim, MeterScope::Wall, 0.0, 100.0)
            .is_none());
        assert_eq!(tiered.stats().archive_pruned_queries, 0);
    }

    #[test]
    fn thread_count_invariance_holds_through_the_cache() {
        let (cluster, wl, cfg) = fixture();
        let mut c1 = cfg;
        c1.threads = 1;
        let mut c8 = cfg;
        c8.threads = 8;
        let sim1 = Simulator::new(&cluster, &wl, LoadBalance::Balanced, c1).unwrap();
        let sim8 = Simulator::new(&cluster, &wl, LoadBalance::Balanced, c8).unwrap();
        // Fresh store per thread count, so each genuinely simulates.
        let p1 = TraceStore::new()
            .products(&sim1, &ProductRequest::with_averages(20.0, 200.0))
            .unwrap();
        let p8 = TraceStore::new()
            .products(&sim8, &ProductRequest::with_averages(20.0, 200.0))
            .unwrap();
        for scope in MeterScope::ALL {
            let t1 = p1.system_trace(scope).unwrap();
            let t8 = p8.system_trace(scope).unwrap();
            for (a, b) in t1.watts.iter().zip(&t8.watts) {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
            for (a, b) in p1
                .node_averages(scope)
                .unwrap()
                .iter()
                .zip(p8.node_averages(scope).unwrap())
            {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
        // And because the key ignores `threads`, either simulator's
        // products would have served the other's request.
        assert_eq!(simulation_key(&sim1), simulation_key(&sim8));
    }
}

//! Component-level power models.
//!
//! A node's power is assembled from processors (CPUs or GPU boards), memory
//! DIMMs, and a static remainder (board, NIC, drives). Processor power
//! follows the classic CMOS decomposition: dynamic power scales with
//! utilization, frequency and the square of voltage; leakage scales with
//! voltage squared and rises with temperature.

use serde::{Deserialize, Serialize};

/// A processor (CPU socket or GPU board) power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessorSpec {
    /// Dynamic power at full utilization, nominal frequency and voltage.
    pub dynamic_w: f64,
    /// Leakage power at nominal voltage and reference temperature.
    pub leakage_w: f64,
    /// Idle dynamic power fraction (clock trees, uncore) of `dynamic_w`.
    pub idle_fraction: f64,
    /// Nominal core frequency in MHz.
    pub f_nom_mhz: f64,
    /// Nominal core voltage in volts.
    pub v_nom: f64,
    /// Leakage temperature coefficient per kelvin (typ. 0.005–0.015).
    pub leakage_temp_coeff: f64,
    /// Reference temperature (deg C) at which `leakage_w` is specified.
    pub t_ref_c: f64,
}

impl ProcessorSpec {
    /// Power drawn by this processor.
    ///
    /// * `utilization` — activity factor in `[0, 1]`;
    /// * `f_mhz`, `v` — operating point (from the DVFS governor);
    /// * `temp_c` — die temperature;
    /// * `leakage_factor` — per-ASIC manufacturing multiplier on leakage.
    pub fn power(
        &self,
        utilization: f64,
        f_mhz: f64,
        v: f64,
        temp_c: f64,
        leakage_factor: f64,
    ) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        let f_ratio = (f_mhz / self.f_nom_mhz).max(0.0);
        let v_ratio2 = (v / self.v_nom).max(0.0).powi(2);
        // Dynamic: alpha C V^2 f, with a floor for always-on clocks.
        let activity = self.idle_fraction + (1.0 - self.idle_fraction) * u;
        let dynamic = self.dynamic_w * activity * f_ratio * v_ratio2;
        // Leakage: ~ V^2 with a linear-in-T correction around t_ref.
        let leakage = self.leakage_w
            * leakage_factor
            * v_ratio2
            * (1.0 + self.leakage_temp_coeff * (temp_c - self.t_ref_c));
        dynamic + leakage.max(0.0)
    }

    /// Nameplate (TDP-like) power: full utilization at nominal operating
    /// point, reference temperature, nominal ASIC.
    pub fn nameplate_w(&self) -> f64 {
        self.power(1.0, self.f_nom_mhz, self.v_nom, self.t_ref_c, 1.0)
    }
}

/// Memory subsystem power model (all DIMMs of a node together).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemorySpec {
    /// Power at idle (refresh, standby).
    pub idle_w: f64,
    /// Additional power at full access rate.
    pub active_w: f64,
}

impl MemorySpec {
    /// Memory power at a given utilization.
    pub fn power(&self, utilization: f64) -> f64 {
        self.idle_w + self.active_w * utilization.clamp(0.0, 1.0)
    }
}

/// Static board power: baseboard, VRM overhead floor, NIC, drives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaticSpec {
    /// Constant power in watts.
    pub watts: f64,
}

impl StaticSpec {
    /// The constant draw.
    pub fn power(&self) -> f64 {
        self.watts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xeon() -> ProcessorSpec {
        ProcessorSpec {
            dynamic_w: 95.0,
            leakage_w: 20.0,
            idle_fraction: 0.12,
            f_nom_mhz: 2700.0,
            v_nom: 1.0,
            leakage_temp_coeff: 0.008,
            t_ref_c: 60.0,
        }
    }

    #[test]
    fn power_monotone_in_utilization() {
        let p = xeon();
        let mut prev = 0.0;
        for i in 0..=10 {
            let u = i as f64 / 10.0;
            let w = p.power(u, 2700.0, 1.0, 60.0, 1.0);
            assert!(w > prev);
            prev = w;
        }
    }

    #[test]
    fn nameplate_is_dynamic_plus_leakage() {
        let p = xeon();
        assert!((p.nameplate_w() - 115.0).abs() < 1e-9);
    }

    #[test]
    fn voltage_squared_scaling() {
        let p = xeon();
        let lo = p.power(1.0, 2700.0, 0.9, 60.0, 1.0);
        let hi = p.power(1.0, 2700.0, 1.1, 60.0, 1.0);
        // Both dynamic and leakage scale ~V^2.
        assert!((hi / lo - (1.1f64 / 0.9).powi(2)).abs() < 1e-9);
    }

    #[test]
    fn frequency_scales_dynamic_only() {
        let p = xeon();
        let base = p.power(1.0, 2700.0, 1.0, 60.0, 1.0);
        let half = p.power(1.0, 1350.0, 1.0, 60.0, 1.0);
        // Halving f halves dynamic (95) but not leakage (20).
        assert!((base - half - 47.5).abs() < 1e-9);
    }

    #[test]
    fn leakage_rises_with_temperature() {
        let p = xeon();
        let cold = p.power(0.0, 2700.0, 1.0, 40.0, 1.0);
        let hot = p.power(0.0, 2700.0, 1.0, 80.0, 1.0);
        // +40 K at 0.008/K => +32% of 20 W leakage = 6.4 W.
        assert!((hot - cold - 6.4).abs() < 1e-9);
    }

    #[test]
    fn leakage_factor_scales_leakage_only() {
        let p = xeon();
        let nominal = p.power(1.0, 2700.0, 1.0, 60.0, 1.0);
        let leaky = p.power(1.0, 2700.0, 1.0, 60.0, 1.5);
        assert!((leaky - nominal - 10.0).abs() < 1e-9);
    }

    #[test]
    fn idle_floor_present() {
        let p = xeon();
        let idle = p.power(0.0, 2700.0, 1.0, 60.0, 1.0);
        // 12% of 95 dynamic + 20 leakage.
        assert!((idle - (0.12 * 95.0 + 20.0)).abs() < 1e-9);
    }

    #[test]
    fn utilization_clamps() {
        let p = xeon();
        assert_eq!(
            p.power(1.5, 2700.0, 1.0, 60.0, 1.0),
            p.power(1.0, 2700.0, 1.0, 60.0, 1.0)
        );
        assert_eq!(
            p.power(-0.5, 2700.0, 1.0, 60.0, 1.0),
            p.power(0.0, 2700.0, 1.0, 60.0, 1.0)
        );
    }

    #[test]
    fn leakage_never_negative() {
        let p = xeon();
        // Absurdly cold: the linear model would go negative; it must clamp.
        let w = p.power(0.0, 2700.0, 1.0, -300.0, 1.0);
        assert!(w >= 0.12 * 95.0 - 1e-9);
    }

    #[test]
    fn memory_model() {
        let m = MemorySpec {
            idle_w: 12.0,
            active_w: 18.0,
        };
        assert_eq!(m.power(0.0), 12.0);
        assert_eq!(m.power(1.0), 30.0);
        assert_eq!(m.power(2.0), 30.0);
        assert!((m.power(0.5) - 21.0).abs() < 1e-12);
    }

    #[test]
    fn static_model() {
        assert_eq!(StaticSpec { watts: 35.0 }.power(), 35.0);
    }
}

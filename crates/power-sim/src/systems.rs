//! Calibrated presets of the paper's test systems.
//!
//! Each preset pairs a [`ClusterSpec`] with a workload, a metering scope and
//! the published target numbers it is calibrated against. Two families:
//!
//! * **Trace presets** (Figure 1 / Table 2): Colosse, Sequoia-25,
//!   Piz Daint, L-CSC — calibrated so the simulated whole-system HPL trace
//!   reproduces the published core-phase power and the first-20% / last-20%
//!   segment ratios;
//! * **Node-variability presets** (Table 3 / Table 4 / Figure 2):
//!   Calcul Québec, CEA Fat, CEA Thin, LRZ, Titan (GPUs), TU Dresden —
//!   calibrated so per-node time-averaged power matches the published mean
//!   and coefficient of variation.
//!
//! Calibration is *constructive*: [`NodeBudget`] solves the component split
//! from the published wall power, the dynamic/static ratio `a` (fitted
//! analytically from the segment ratios — see `DESIGN.md`), and the
//! workload's mean core utilization; [`NodeBudget::variability_for_cv`]
//! solves the manufacturing-spread parameters from the published
//! sigma/mu. The numbers in the constructors below are therefore the
//! *published* values plus a handful of shape constants, not hand-tweaked
//! component wattages.

use crate::cluster::ClusterSpec;
use crate::components::{MemorySpec, ProcessorSpec, StaticSpec};
use crate::dvfs::{Governor, PState};
use crate::engine::MeterScope;
use crate::fan::{FanPolicy, FanSpec};
use crate::node::NodeSpec;
use crate::thermal::ThermalSpec;
use crate::variability::VariabilityModel;
use crate::vid::{VidTable, VoltagePolicy};
use power_workload::{
    Firestarter, Hpl, HplShape, HplVariant, LoadBalance, MPrime, RodiniaCfd, RunPhases, Workload,
};

/// Published numbers a preset is calibrated against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperTargets {
    /// Machine size `N` used in the paper's statistics (Table 4) or trace.
    pub population: usize,
    /// HPL runtime in hours (Table 2).
    pub runtime_hours: Option<f64>,
    /// Core-phase average power in kW (Table 2).
    pub core_kw: Option<f64>,
    /// First-20%-of-core average power in kW (Table 2).
    pub first20_kw: Option<f64>,
    /// Last-20%-of-core average power in kW (Table 2).
    pub last20_kw: Option<f64>,
    /// Per-node (or per-component) mean power in W (Table 4).
    pub mean_node_w: Option<f64>,
    /// Per-node standard deviation in W (Table 4).
    pub sigma_node_w: Option<f64>,
}

/// The workload a preset runs (owning enum so presets are self-contained).
#[derive(Debug, Clone)]
pub enum PresetWorkload {
    /// High-Performance Linpack.
    Hpl(Hpl),
    /// FIRESTARTER stress test.
    Firestarter(Firestarter),
    /// MPrime torture test.
    MPrime(MPrime),
    /// Rodinia CFD solver.
    Rodinia(RodiniaCfd),
}

impl PresetWorkload {
    /// Borrow as the workload trait object.
    pub fn workload(&self) -> &dyn Workload {
        match self {
            PresetWorkload::Hpl(w) => w,
            PresetWorkload::Firestarter(w) => w,
            PresetWorkload::MPrime(w) => w,
            PresetWorkload::Rodinia(w) => w,
        }
    }
}

/// A fully specified, calibrated test system.
#[derive(Debug, Clone)]
pub struct SystemPreset {
    /// System name as used in the paper.
    pub name: &'static str,
    /// The machine.
    pub cluster_spec: ClusterSpec,
    /// The workload the paper ran on it.
    pub workload: PresetWorkload,
    /// Load distribution (balanced for every paper system).
    pub balance: LoadBalance,
    /// Number of components the paper actually metered (Table 3).
    pub measured_nodes: usize,
    /// What the meters covered.
    pub scope: MeterScope,
    /// Published calibration targets.
    pub targets: PaperTargets,
}

impl SystemPreset {
    /// Scales the machine to `n` nodes (for tests and quick runs); the
    /// per-node model and targets are unchanged.
    pub fn with_total_nodes(mut self, n: usize) -> Self {
        self.cluster_spec.total_nodes = n;
        self.measured_nodes = self.measured_nodes.min(n);
        self
    }

    /// The four Figure 1 / Table 2 trace systems.
    pub fn trace_presets() -> Vec<SystemPreset> {
        vec![colosse(), sequoia25(), piz_daint(), lcsc()]
    }

    /// The six Table 3 / Table 4 node-variability systems.
    pub fn variability_presets() -> Vec<SystemPreset> {
        vec![
            calcul_quebec(),
            cea_fat(),
            cea_thin(),
            lrz(),
            titan(),
            tu_dresden(),
        ]
    }
}

/// Constructive node-model calibration.
///
/// Models per-node DC power as `P(u) = C0 + C1 * u` and solves the
/// component split from:
///
/// * `wall_w` — published per-node wall power at mean core utilization;
/// * `a` — dynamic/static ratio `C1 * u_mean / C0`, fitted analytically
///   from the published first/last segment ratios;
/// * `mean_util` — the workload's mean core utilization.
#[derive(Debug, Clone, Copy)]
pub struct NodeBudget {
    /// Target per-node wall power at mean core utilization.
    pub wall_w: f64,
    /// Dynamic/static ratio `a = C1 * mean_util / C0`.
    pub a: f64,
    /// Mean core utilization of the workload.
    pub mean_util: f64,
    /// Processor sockets / boards per node.
    pub sockets: usize,
    /// PSU efficiency.
    pub psu_eff: f64,
    /// Fan power as a fraction of `C0`.
    pub fan_frac: f64,
    /// Leakage as a fraction of `C0`.
    pub leak_frac: f64,
    /// Idle (always-on) fraction of processor dynamic power.
    pub idle_fraction: f64,
    /// Nominal frequency the governor will pin (MHz).
    pub f_nom_mhz: f64,
    /// Nominal voltage the governor will pin (V).
    pub v_nom: f64,
    /// Leakage temperature coefficient per kelvin.
    pub leakage_temp_coeff: f64,
    /// Thermal time constant.
    pub tau_s: f64,
}

impl NodeBudget {
    /// Reasonable defaults for a CPU system; override fields as needed.
    pub fn cpu(wall_w: f64, a: f64, mean_util: f64, sockets: usize) -> Self {
        NodeBudget {
            wall_w,
            a,
            mean_util,
            sockets,
            psu_eff: 0.91,
            fan_frac: 0.05,
            leak_frac: 0.20,
            idle_fraction: 0.12,
            f_nom_mhz: 2700.0,
            v_nom: 1.0,
            leakage_temp_coeff: 0.004,
            tau_s: 180.0,
        }
    }

    /// Total DC power at mean utilization.
    pub fn dc_w(&self) -> f64 {
        self.wall_w * self.psu_eff
    }

    /// Static coefficient `C0` of the DC power model.
    pub fn c0(&self) -> f64 {
        self.dc_w() / (1.0 + self.a)
    }

    /// Dynamic coefficient `C1` of the DC power model.
    pub fn c1(&self) -> f64 {
        self.dc_w() * self.a / ((1.0 + self.a) * self.mean_util)
    }

    /// Fan electrical power (held constant by a pinned policy at half
    /// speed; the cubic law gives `max_power = fan_w / 0.125`).
    pub fn fan_w(&self) -> f64 {
        self.fan_frac * self.c0()
    }

    /// Builds the node spec realizing this budget.
    ///
    /// Splits: memory takes 10% of `C1` (active) and 6% of `C0` (idle);
    /// processors take the rest of `C1` as dynamic power and `leak_frac`
    /// of `C0` as leakage; whatever remains of `C0` is static board power.
    /// The thermal resistance is chosen so the node runs at 60 °C under
    /// mean load (with `t_ref` = 60 °C so leakage is calibrated exactly at
    /// the operating point).
    pub fn build(&self) -> NodeSpec {
        let c0 = self.c0();
        let c1 = self.c1();
        let fan_w = self.fan_w();
        let mem_active = 0.10 * c1;
        let dyn_total = 0.90 * c1 / (1.0 - self.idle_fraction);
        let leak_total = self.leak_frac * c0;
        let mem_idle = 0.06 * c0;
        let idle_dyn = dyn_total * self.idle_fraction;
        let static_w = (c0 - fan_w - leak_total - mem_idle - idle_dyn).max(0.0);

        let heat_at_mean = c0 + c1 * self.mean_util - fan_w;
        let r_th = 35.0 / heat_at_mean.max(1.0);

        NodeSpec {
            processors: vec![
                ProcessorSpec {
                    dynamic_w: dyn_total / self.sockets as f64,
                    leakage_w: leak_total / self.sockets as f64,
                    idle_fraction: self.idle_fraction,
                    f_nom_mhz: self.f_nom_mhz,
                    v_nom: self.v_nom,
                    leakage_temp_coeff: self.leakage_temp_coeff,
                    t_ref_c: 60.0,
                };
                self.sockets
            ],
            memory: MemorySpec {
                idle_w: mem_idle,
                active_w: mem_active,
            },
            static_power: StaticSpec { watts: static_w },
            fan: FanSpec {
                max_power_w: fan_w / 0.125,
                min_speed: 0.25,
            },
            thermal: ThermalSpec {
                t_ambient_c: 25.0,
                r_th_max: r_th,
                r_th_min: r_th,
                tau_s: self.tau_s,
            },
            psu_efficiency: self.psu_eff,
        }
    }

    /// The governor pinning the nominal operating point (model scale 1).
    pub fn nominal_governor(&self) -> Governor {
        Governor::Static(PState {
            f_mhz: self.f_nom_mhz,
            voltage: VoltagePolicy::Fixed(self.v_nom),
        })
    }

    /// Solves the manufacturing-spread parameters so that per-node wall
    /// power has the published coefficient of variation.
    ///
    /// Fan power is constant under a pinned policy, so the compute path
    /// must carry `cv * dc / compute` of relative spread; per-socket
    /// leakage (log-sigma fixed at 0.06) contributes
    /// `sqrt(sockets) * leak_w * 0.06 / compute`, and the node multiplier
    /// takes up the remainder.
    pub fn variability_for_cv(&self, target_cv: f64) -> VariabilityModel {
        const LEAK_SIGMA: f64 = 0.06;
        let c0 = self.c0();
        let compute = c0 + self.c1() * self.mean_util - self.fan_w();
        let needed = target_cv * self.dc_w() / compute;
        let leak_per_socket = self.leak_frac * c0 / self.sockets as f64;
        let from_leak = (self.sockets as f64).sqrt() * leak_per_socket * LEAK_SIGMA / compute;
        let node_sigma = (needed * needed - from_leak * from_leak).max(1e-8).sqrt();
        VariabilityModel {
            leakage_sigma: LEAK_SIGMA,
            node_sigma,
            vid_bins: 6,
            vid_leakage_corr: 0.0,
        }
    }
}

fn pinned_fans() -> FanPolicy {
    FanPolicy::Pinned { speed: 0.5 }
}

fn hpl_cpu_shape(end_frac: f64) -> HplShape {
    HplShape {
        peak: 0.96,
        plateau_frac: 0.0,
        end_frac,
        kappa: 3.0,
        warmup_frac: 0.0,
        idle: 0.08,
        ripple: 0.004,
        panel_steps: 240.0,
    }
}

fn hpl_gpu_shape(plateau_frac: f64, end_frac: f64) -> HplShape {
    HplShape {
        peak: 0.98,
        plateau_frac,
        end_frac,
        kappa: 1.0,
        warmup_frac: 0.0,
        idle: 0.10,
        ripple: 0.02,
        panel_steps: 120.0,
    }
}

fn trace_preset(
    name: &'static str,
    total_nodes: usize,
    budget: NodeBudget,
    hpl: Hpl,
    targets: PaperTargets,
) -> SystemPreset {
    SystemPreset {
        name,
        cluster_spec: ClusterSpec {
            name: name.into(),
            total_nodes,
            node: budget.build(),
            variability: budget.variability_for_cv(0.02),
            governor: budget.nominal_governor(),
            fan_policy: pinned_fans(),
            ambient_gradient_c: 0.0,
            seed: 0x5C15_0001,
        },
        workload: PresetWorkload::Hpl(hpl),
        balance: LoadBalance::Balanced,
        measured_nodes: total_nodes,
        scope: MeterScope::Wall,
        targets,
    }
}

/// Colosse (Calcul Québec): 7-hour CPU HPL run with a power curve flat to
/// 0.25% — the "most traditional" design in Figure 1.
pub fn colosse() -> SystemPreset {
    let phases = RunPhases::new(600.0, 7.0 * 3600.0, 600.0).unwrap();
    // Essentially flat: tiny tail decline; the slight first-20% deficit in
    // the paper comes from thermal warm-up, which the engine reproduces
    // (long tau, higher leakage temperature coefficient).
    let shape = hpl_cpu_shape(0.9949);
    let hpl = Hpl::with_shape(
        HplVariant::CpuMainMemory,
        phases,
        Hpl::flops_for_matrix(1.43e6),
        shape,
    )
    .unwrap();
    let mut budget = NodeBudget::cpu(398_700.0 / 960.0, 1.0, hpl.mean_core_utilization(), 2);
    budget.leakage_temp_coeff = 0.012;
    budget.tau_s = 900.0;
    trace_preset(
        "Colosse",
        960,
        budget,
        hpl,
        PaperTargets {
            population: 960,
            runtime_hours: Some(7.0),
            core_kw: Some(398.7),
            first20_kw: Some(398.1),
            last20_kw: Some(398.2),
            mean_node_w: None,
            sigma_node_w: None,
        },
    )
}

/// Sequoia-25 (LLNL): the temporary Sequoia+Vulcan combination, ~2M cores,
/// 28-hour CPU HPL run with a ~3.5% first-to-last drift.
pub fn sequoia25() -> SystemPreset {
    let phases = RunPhases::new(1200.0, 28.0 * 3600.0, 600.0).unwrap();
    let shape = hpl_cpu_shape(0.91);
    let hpl = Hpl::with_shape(
        HplVariant::CpuMainMemory,
        phases,
        Hpl::flops_for_matrix(1.53e7),
        shape,
    )
    .unwrap();
    let mut budget = NodeBudget::cpu(
        11_503_300.0 / 122_880.0,
        1.0,
        hpl.mean_core_utilization(),
        1,
    );
    budget.fan_frac = 0.02; // BG/Q racks are water-cooled
    budget.psu_eff = 0.93;
    trace_preset(
        "Sequoia-25",
        122_880,
        budget,
        hpl,
        PaperTargets {
            population: 122_880,
            runtime_hours: Some(28.0),
            core_kw: Some(11_503.3),
            first20_kw: Some(11_628.7),
            last20_kw: Some(11_244.2),
            mean_node_w: None,
            sigma_node_w: None,
        },
    )
}

/// Piz Daint (CSCS): 1.5-hour GPU in-core HPL run; >20% spread between
/// segment averages.
pub fn piz_daint() -> SystemPreset {
    let phases = RunPhases::new(300.0, 1.5 * 3600.0, 300.0).unwrap();
    // a = 0.50 with plateau 0.68 / end 0.20 fits first = +4.85%,
    // last = -16.2% (see DESIGN.md).
    let shape = hpl_gpu_shape(0.68, 0.20);
    let hpl = Hpl::with_shape(
        HplVariant::GpuInCore,
        phases,
        Hpl::flops_for_matrix(2.78e6),
        shape,
    )
    .unwrap();
    let mut budget = NodeBudget::cpu(833_400.0 / 5_272.0, 0.50, hpl.mean_core_utilization(), 2);
    budget.psu_eff = 0.93;
    trace_preset(
        "Piz Daint",
        5_272,
        budget,
        hpl,
        PaperTargets {
            population: 5_272,
            runtime_hours: Some(1.5),
            core_kw: Some(833.4),
            first20_kw: Some(873.8),
            last20_kw: Some(698.4),
            mean_node_w: None,
            sigma_node_w: None,
        },
    )
}

/// L-CSC (GSI): the Green500 #1 multi-GPU cluster; first-20% 63.9 kW vs
/// last-20% 46.8 kW — a >20% measurement swing under the old rules.
pub fn lcsc() -> SystemPreset {
    let phases = RunPhases::new(300.0, 1.5 * 3600.0, 300.0).unwrap();
    // a = 0.533 with plateau 0.57 / end 0.12 fits first = +8.1%,
    // last = -20.8% (see DESIGN.md).
    let shape = hpl_gpu_shape(0.57, 0.12);
    let hpl = Hpl::with_shape(
        HplVariant::GpuInCore,
        phases,
        Hpl::flops_for_matrix(1.36e6),
        shape,
    )
    .unwrap();
    let mut budget = NodeBudget::cpu(59_100.0 / 160.0, 0.533, hpl.mean_core_utilization(), 4);
    budget.psu_eff = 0.93;
    budget.f_nom_mhz = 774.0;
    budget.v_nom = 1.018;
    trace_preset(
        "L-CSC",
        160,
        budget,
        hpl,
        PaperTargets {
            population: 160,
            runtime_hours: Some(1.5),
            core_kw: Some(59.1),
            first20_kw: Some(63.9),
            last20_kw: Some(46.8),
            mean_node_w: None,
            sigma_node_w: None,
        },
    )
}

#[allow(clippy::too_many_arguments)] // one argument per published Table 3/4 column
fn variability_preset(
    name: &'static str,
    population: usize,
    measured: usize,
    budget: NodeBudget,
    target_cv: f64,
    workload: PresetWorkload,
    mean_w: f64,
    sigma_w: f64,
) -> SystemPreset {
    SystemPreset {
        name,
        cluster_spec: ClusterSpec {
            name: name.into(),
            total_nodes: population,
            node: budget.build(),
            variability: budget.variability_for_cv(target_cv),
            governor: budget.nominal_governor(),
            fan_policy: pinned_fans(),
            ambient_gradient_c: 0.0,
            seed: 0x7AB1_E400 ^ population as u64,
        },
        workload,
        balance: LoadBalance::Balanced,
        measured_nodes: measured,
        scope: MeterScope::Wall,
        targets: PaperTargets {
            population,
            runtime_hours: None,
            core_kw: None,
            first20_kw: None,
            last20_kw: None,
            mean_node_w: Some(mean_w),
            sigma_node_w: Some(sigma_w),
        },
    }
}

fn short_hpl_cpu() -> Hpl {
    let phases = RunPhases::new(120.0, 2.0 * 3600.0, 120.0).unwrap();
    Hpl::with_shape(
        HplVariant::CpuMainMemory,
        phases,
        Hpl::flops_for_matrix(2.0e5),
        hpl_cpu_shape(0.93),
    )
    .unwrap()
}

/// Calcul Québec: 480 blades (2x Intel X5560 nodes), HPL,
/// mu = 581.93 W, sigma/mu = 2.00% (Table 4).
pub fn calcul_quebec() -> SystemPreset {
    let hpl = short_hpl_cpu();
    let budget = NodeBudget::cpu(581.93, 1.0, hpl.mean_core_utilization(), 4);
    variability_preset(
        "Calcul Québec",
        480,
        480,
        budget,
        0.0200,
        PresetWorkload::Hpl(hpl),
        581.93,
        11.66,
    )
}

/// CEA Fat nodes: 4x Intel X7560, HPL, mu = 971.74 W, sigma/mu = 2.04%.
pub fn cea_fat() -> SystemPreset {
    let hpl = short_hpl_cpu();
    let budget = NodeBudget::cpu(971.74, 1.0, hpl.mean_core_utilization(), 4);
    variability_preset(
        "CEA (Fat)",
        360,
        316,
        budget,
        0.0204,
        PresetWorkload::Hpl(hpl),
        971.74,
        19.81,
    )
}

/// CEA Thin nodes: 2x Intel E5-2680, HPL, mu = 366.84 W, sigma/mu = 2.84%.
pub fn cea_thin() -> SystemPreset {
    let hpl = short_hpl_cpu();
    let budget = NodeBudget::cpu(366.84, 1.0, hpl.mean_core_utilization(), 2);
    variability_preset(
        "CEA (Thin)",
        5_040,
        640,
        budget,
        0.0284,
        PresetWorkload::Hpl(hpl),
        366.84,
        10.41,
    )
}

/// LRZ (SuperMUC): 2x Intel E5-2680, MPrime, mu = 209.88 W,
/// sigma/mu = 2.53%.
pub fn lrz() -> SystemPreset {
    let phases = RunPhases::new(120.0, 3600.0, 120.0).unwrap();
    let wl = MPrime::new(phases);
    let budget = NodeBudget::cpu(209.88, 1.0, wl.level(), 2);
    variability_preset(
        "LRZ",
        9_216,
        512,
        budget,
        0.0253,
        PresetWorkload::MPrime(wl),
        209.88,
        5.31,
    )
}

/// ORNL Titan: Rodinia CFD on the K20X GPUs of 1000 nodes; the meters
/// covered the GPUs only. mu = 90.74 W, sigma/mu = 1.99% per GPU.
pub fn titan() -> SystemPreset {
    let phases = RunPhases::new(120.0, 3600.0, 120.0).unwrap();
    let wl = RodiniaCfd::new(phases);
    // Mean utilization of the Rodinia model: level minus dip share.
    let mean_util = 0.93 * 0.9 + (0.93 - 0.08) * 0.1;
    // GPU-only calibration: power = dyn*(if + (1-if)u) + leak = 90.74 W.
    let leak_w = 22.0;
    let idle_fraction = 0.12;
    let dyn_w = (90.74 - leak_w) / (idle_fraction + (1.0 - idle_fraction) * mean_util);
    // sigma/mu = 1.99% carried entirely by leakage spread.
    let leakage_sigma = 0.0199 * 90.74 / leak_w;
    let node = NodeSpec {
        processors: vec![ProcessorSpec {
            dynamic_w: dyn_w,
            leakage_w: leak_w,
            idle_fraction,
            f_nom_mhz: 732.0,
            v_nom: 1.0,
            leakage_temp_coeff: 0.004,
            t_ref_c: 60.0,
        }],
        memory: MemorySpec {
            idle_w: 25.0,
            active_w: 20.0,
        },
        // The AMD 6274 host CPU and board are unmetered: fold into static.
        static_power: StaticSpec { watts: 130.0 },
        fan: FanSpec {
            max_power_w: 40.0,
            min_speed: 0.25,
        },
        thermal: ThermalSpec {
            t_ambient_c: 25.0,
            r_th_max: 0.12,
            r_th_min: 0.12,
            tau_s: 180.0,
        },
        psu_efficiency: 0.92,
    };
    SystemPreset {
        name: "Titan",
        cluster_spec: ClusterSpec {
            name: "Titan".into(),
            total_nodes: 18_688,
            node,
            variability: VariabilityModel {
                leakage_sigma,
                node_sigma: 0.015,
                vid_bins: 6,
                vid_leakage_corr: 0.0,
            },
            governor: Governor::Static(PState {
                f_mhz: 732.0,
                voltage: VoltagePolicy::Fixed(1.0),
            }),
            fan_policy: pinned_fans(),
            ambient_gradient_c: 0.0,
            seed: 0x0E17_A200,
        },
        workload: PresetWorkload::Rodinia(wl),
        balance: LoadBalance::Balanced,
        measured_nodes: 1_000,
        scope: MeterScope::ProcessorsOnly,
        targets: PaperTargets {
            population: 18_688,
            runtime_hours: None,
            core_kw: None,
            first20_kw: None,
            last20_kw: None,
            mean_node_w: Some(90.74),
            sigma_node_w: Some(1.81),
        },
    }
}

/// TU Dresden: 2x Intel E5-2690, FIRESTARTER, mu = 386.86 W,
/// sigma/mu = 1.51% — the tightest distribution in Table 4.
pub fn tu_dresden() -> SystemPreset {
    let phases = RunPhases::new(120.0, 3600.0, 120.0).unwrap();
    let wl = Firestarter::new(phases);
    let budget = NodeBudget::cpu(386.86, 1.2, wl.level(), 2);
    variability_preset(
        "TU Dresden",
        210,
        210,
        budget,
        0.0151,
        PresetWorkload::Firestarter(wl),
        386.86,
        5.85,
    )
}

/// The L-CSC case-study machine of Section 5 / Figure 4: four FirePro
/// S9150 boards per node, VID-binned silicon, and the two operating
/// configurations the paper compares.
#[derive(Debug, Clone)]
pub struct LcscCaseStudy {
    /// The machine, configured with the *tuned* settings (774 MHz at a
    /// fixed 1.018 V, slow pinned fans).
    pub cluster_spec: ClusterSpec,
    /// Tuned governor: 774 MHz, 1.018 V for every board.
    pub tuned_governor: Governor,
    /// Vendor-default governor: 900 MHz at each board's VID voltage.
    pub default_governor: Governor,
    /// Slow pinned fans (tuned runs).
    pub slow_fans: FanPolicy,
    /// Fast pinned fans (required to stay in thermal limits at 900 MHz).
    pub fast_fans: FanPolicy,
    /// Per-node HPL performance at 774 MHz, in GFLOPS (performance scales
    /// linearly with frequency).
    pub gflops_at_774: f64,
    /// Single-node HPL phases used for the per-node efficiency runs.
    pub phases: RunPhases,
}

impl LcscCaseStudy {
    /// Builds the case-study configuration.
    pub fn new() -> Self {
        let preset = lcsc();
        let mut cluster_spec = preset.cluster_spec;
        // Section 5 measures per-GPU effects: most of the static budget is
        // GPU idle/leakage rather than board power, so re-balance the node
        // toward the processors (4 x S9150 dominate L-CSC node power).
        let hpl = match &preset.workload {
            PresetWorkload::Hpl(h) => *h,
            _ => unreachable!("lcsc preset runs HPL"),
        };
        let mut budget = NodeBudget::cpu(59_100.0 / 160.0, 0.533, hpl.mean_core_utilization(), 4);
        budget.psu_eff = 0.93;
        budget.f_nom_mhz = 774.0;
        budget.v_nom = 1.018;
        budget.leak_frac = 0.35;
        budget.idle_fraction = 0.35;
        budget.fan_frac = 0.04;
        cluster_spec.node = budget.build();
        // Fan swing is a first-class effect here: give the bank the >100 W
        // authority the paper reports.
        cluster_spec.node.fan.max_power_w = 160.0;
        cluster_spec.variability = VariabilityModel {
            leakage_sigma: 0.06,
            // Tuned-config efficiency sigma ~1.2% (Figure 4 conclusion).
            node_sigma: 0.012,
            vid_bins: 6,
            // The paper's surprise: at fixed voltage, efficiency is
            // *unrelated* to VID — so VID must not correlate with leakage.
            vid_leakage_corr: 0.0,
        };
        let tuned = Governor::Static(PState {
            f_mhz: 774.0,
            voltage: VoltagePolicy::Fixed(1.018),
        });
        let default = Governor::Static(PState {
            f_mhz: 900.0,
            voltage: VoltagePolicy::UseVid(VidTable::firepro_s9150()),
        });
        cluster_spec.governor = tuned.clone();
        let slow_fans = FanPolicy::Pinned { speed: 0.45 };
        let fast_fans = FanPolicy::Pinned { speed: 0.70 };
        cluster_spec.fan_policy = slow_fans;
        LcscCaseStudy {
            cluster_spec,
            tuned_governor: tuned,
            default_governor: default,
            slow_fans,
            fast_fans,
            gflops_at_774: 1_900.0,
            phases: RunPhases::new(120.0, 1800.0, 120.0).unwrap(),
        }
    }

    /// Per-node HPL performance in GFLOPS at frequency `f_mhz`.
    pub fn gflops_at(&self, f_mhz: f64) -> f64 {
        self.gflops_at_774 * f_mhz / 774.0
    }
}

impl Default for LcscCaseStudy {
    fn default() -> Self {
        LcscCaseStudy::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for p in SystemPreset::trace_presets()
            .into_iter()
            .chain(SystemPreset::variability_presets())
        {
            p.cluster_spec
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert!(p.measured_nodes <= p.cluster_spec.total_nodes, "{}", p.name);
            assert!(p.measured_nodes > 0, "{}", p.name);
        }
        LcscCaseStudy::new().cluster_spec.validate().unwrap();
    }

    #[test]
    fn budget_realizes_target_power() {
        // Node built from a budget must draw the target wall power at mean
        // utilization, nominal governor, 60 deg C, pinned half-speed fans.
        for preset in SystemPreset::trace_presets() {
            let hpl = match &preset.workload {
                PresetWorkload::Hpl(h) => *h,
                _ => unreachable!(),
            };
            let u = hpl.mean_core_utilization();
            let spec = &preset.cluster_spec;
            let pstate = spec.governor.pstate(0.0, u);
            let power = spec.node.power(
                &[],
                1.0,
                u,
                &pstate,
                &FanPolicy::Pinned { speed: 0.5 },
                60.0,
            );
            let target =
                preset.targets.core_kw.unwrap() * 1000.0 / preset.cluster_spec.total_nodes as f64;
            assert!(
                (power.wall_w - target).abs() / target < 0.01,
                "{}: wall {} vs target {}",
                preset.name,
                power.wall_w,
                target
            );
        }
    }

    #[test]
    fn budget_component_split_is_positive() {
        for preset in SystemPreset::trace_presets()
            .into_iter()
            .chain(SystemPreset::variability_presets())
        {
            let node = &preset.cluster_spec.node;
            assert!(node.static_power.watts >= 0.0, "{}", preset.name);
            for proc in &node.processors {
                assert!(proc.dynamic_w > 0.0, "{}", preset.name);
                assert!(
                    proc.leakage_w > 0.0 || preset.name == "Titan",
                    "{}",
                    preset.name
                );
            }
            assert!(node.memory.idle_w >= 0.0 && node.memory.active_w >= 0.0);
        }
    }

    #[test]
    fn variability_calibration_solves_cv() {
        let budget = NodeBudget::cpu(400.0, 1.0, 0.95, 2);
        let v = budget.variability_for_cv(0.02);
        v.validate().unwrap();
        assert!(v.node_sigma > 0.0 && v.node_sigma < 0.05);
        // Larger target cv -> larger node sigma.
        let v2 = budget.variability_for_cv(0.03);
        assert!(v2.node_sigma > v.node_sigma);
    }

    #[test]
    fn trace_targets_recorded() {
        let t = piz_daint().targets;
        assert_eq!(t.core_kw, Some(833.4));
        assert_eq!(t.first20_kw, Some(873.8));
        assert_eq!(t.last20_kw, Some(698.4));
        assert_eq!(t.population, 5_272);
    }

    #[test]
    fn table4_targets_recorded() {
        let names: Vec<&str> = SystemPreset::variability_presets()
            .iter()
            .map(|p| p.name)
            .collect();
        assert_eq!(
            names,
            vec![
                "Calcul Québec",
                "CEA (Fat)",
                "CEA (Thin)",
                "LRZ",
                "Titan",
                "TU Dresden"
            ]
        );
        let lrz = lrz();
        assert_eq!(lrz.targets.mean_node_w, Some(209.88));
        assert_eq!(lrz.targets.population, 9_216);
        assert_eq!(lrz.measured_nodes, 512);
        let titan = titan();
        assert_eq!(titan.scope, MeterScope::ProcessorsOnly);
        assert_eq!(titan.measured_nodes, 1_000);
    }

    #[test]
    fn with_total_nodes_scales() {
        let p = sequoia25().with_total_nodes(512);
        assert_eq!(p.cluster_spec.total_nodes, 512);
        assert_eq!(p.measured_nodes, 512);
    }

    #[test]
    fn case_study_governors_differ() {
        let cs = LcscCaseStudy::new();
        let tuned = cs.tuned_governor.pstate(0.0, 1.0);
        let default = cs.default_governor.pstate(0.0, 1.0);
        assert_eq!(tuned.f_mhz, 774.0);
        assert_eq!(default.f_mhz, 900.0);
        assert_eq!(tuned.voltage.voltage(5), 1.018);
        assert!(default.voltage.voltage(5) > default.voltage.voltage(0));
        assert!((cs.gflops_at(900.0) / cs.gflops_at_774 - 900.0 / 774.0).abs() < 1e-12);
    }
}

//! Multi-producer sample ingestion with watermarks and drop accounting.
//!
//! Collectors in a real campaign (one per PDU, per rack, per BMC poller)
//! deliver samples concurrently and not quite in order: SNMP retries,
//! buffered batches, and clock skew reorder them by a few sample
//! intervals. The ingestion layer accepts that disorder up to a
//! configurable *lateness bound*: a per-node watermark trails the newest
//! sequence number seen by `lateness` slots, samples behind it are
//! finalized into the node's [`RingBuffer`] in true order (gaps filled
//! with missing placeholders), and anything arriving later still is
//! dropped. Duplicate offers of a still-pending sequence number keep the
//! first arrival's value. Every such discard is *counted*, never silent:
//! `accepted + dropped + duplicates` equals the samples offered. The
//! paper's accuracy claims rest on knowing exactly what fraction of
//! samples made it.
//!
//! The multi-producer front is plain `std::sync::mpsc` under
//! `std::thread::scope`; a bounded channel provides backpressure with a
//! choice of blocking or shedding ([`BackpressurePolicy`]).

use crate::ring::RingBuffer;
use crate::{Result, TelemetryError};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;

/// One power sample from one collector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Node slot index (position in the campaign's metered set).
    pub node: usize,
    /// Per-node sequence number (simulation step of the reading).
    pub seq: u64,
    /// Metered power in watts.
    pub watts: f64,
}

/// What a producer does when the ingestion channel is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Block the producer until the consumer drains (lossless).
    Block,
    /// Drop the sample being offered and count it (lossy, bounded delay).
    DropNewest,
}

/// Ingestion tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestConfig {
    /// Reordering budget in sequence slots: the per-node watermark trails
    /// the newest sequence number seen by `lateness` slots, so a sample
    /// displaced *strictly less than* `lateness` behind the newest arrival
    /// is guaranteed accepted; displacement of `lateness` or more may fall
    /// behind the watermark and be dropped as late. `0` demands exact
    /// order.
    pub lateness: u64,
    /// Per-node ring capacity (samples retained for window queries).
    pub ring_capacity: usize,
    /// Bound of the producer→consumer channel.
    pub channel_capacity: usize,
    /// Behaviour when the channel is full.
    pub backpressure: BackpressurePolicy,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            lateness: 8,
            ring_capacity: 4096,
            channel_capacity: 1024,
            backpressure: BackpressurePolicy::Block,
        }
    }
}

impl IngestConfig {
    /// Validates the knobs.
    pub fn validate(&self) -> Result<()> {
        if self.ring_capacity == 0 {
            return Err(TelemetryError::InvalidConfig {
                field: "ring_capacity",
                reason: "ring capacity must be at least 1",
            });
        }
        if self.channel_capacity == 0 {
            return Err(TelemetryError::InvalidConfig {
                field: "channel_capacity",
                reason: "channel capacity must be at least 1",
            });
        }
        if self.lateness as usize >= self.ring_capacity {
            return Err(TelemetryError::InvalidConfig {
                field: "lateness",
                reason: "lateness bound must be smaller than the ring capacity",
            });
        }
        Ok(())
    }
}

/// Aggregate ingestion counters across all nodes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Samples finalized into rings.
    pub accepted: u64,
    /// Samples rejected for arriving behind the watermark.
    pub late_dropped: u64,
    /// Samples shed by [`BackpressurePolicy::DropNewest`].
    pub backpressure_dropped: u64,
    /// Missing placeholders inserted for sequence gaps.
    pub gaps: u64,
    /// Accepted samples that arrived out of order (buffered before
    /// finalization).
    pub reordered: u64,
    /// Offers whose sequence number was already pending finalization; the
    /// first arrival's value is kept. (Duplicates arriving behind the
    /// watermark are counted in `late_dropped` instead.)
    pub duplicates: u64,
}

impl IngestStats {
    /// Samples lost to lateness or backpressure. Duplicates are counted
    /// separately: discarding one loses no information.
    pub fn dropped(&self) -> u64 {
        self.late_dropped + self.backpressure_dropped
    }
}

impl std::fmt::Display for IngestStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} accepted ({} reordered), {} late-dropped, {} shed, {} duplicates, {} gap slots",
            self.accepted,
            self.reordered,
            self.late_dropped,
            self.backpressure_dropped,
            self.duplicates,
            self.gaps
        )
    }
}

/// Per-node reordering state in front of a ring.
#[derive(Debug)]
struct NodeIngest {
    ring: RingBuffer,
    /// Samples past the watermark, awaiting finalization, keyed by seq.
    pending: BTreeMap<u64, f64>,
    /// Highest sequence number seen so far, if any.
    max_seen: Option<u64>,
    lateness: u64,
    accepted: u64,
    late_dropped: u64,
    gaps: u64,
    reordered: u64,
    duplicates: u64,
}

impl NodeIngest {
    fn new(t0: f64, dt: f64, capacity: usize, lateness: u64) -> Result<Self> {
        Ok(NodeIngest {
            ring: RingBuffer::new(t0, dt, capacity)?,
            pending: BTreeMap::new(),
            max_seen: None,
            lateness,
            accepted: 0,
            late_dropped: 0,
            gaps: 0,
            reordered: 0,
            duplicates: 0,
        })
    }

    /// The finalization boundary: everything below it is in the ring.
    fn watermark(&self) -> u64 {
        self.ring.next_seq()
    }

    fn offer(&mut self, seq: u64, watts: f64) {
        if seq < self.watermark() {
            self.late_dropped += 1;
            return;
        }
        // In-order fast path: with no lateness allowance the watermark
        // tracks the newest arrival exactly, so the next in-sequence
        // sample finalizes immediately — skip the pending map entirely.
        // (`pending` is always drained between offers when lateness is
        // 0, so no buffered sample can be skipped past.)
        if self.lateness == 0 && seq == self.ring.next_seq() && self.pending.is_empty() {
            self.ring.push(watts);
            self.accepted += 1;
            self.max_seen = Some(seq);
            return;
        }
        match self.pending.entry(seq) {
            // A duplicate of a still-pending sample: keep the first
            // arrival's value and count the discard, so
            // accepted + dropped + duplicates == offered.
            std::collections::btree_map::Entry::Occupied(_) => {
                self.duplicates += 1;
                return;
            }
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(watts);
            }
        }
        if self.max_seen.is_some_and(|m| seq < m) {
            self.reordered += 1;
        }
        self.max_seen = Some(self.max_seen.map_or(seq, |m| m.max(seq)));
        // The watermark trails the newest arrival by `lateness` slots:
        // anything at least that old can no longer be displaced.
        let boundary = (self.max_seen.unwrap() + 1).saturating_sub(self.lateness);
        self.finalize_below(boundary);
    }

    /// Pushes every pending sample with `seq < boundary` into the ring in
    /// true order, inserting missing placeholders for gaps.
    fn finalize_below(&mut self, boundary: u64) {
        while let Some((&seq, &w)) = self.pending.first_key_value() {
            if seq >= boundary {
                break;
            }
            while self.ring.next_seq() < seq {
                self.ring.push_missing();
                self.gaps += 1;
            }
            self.ring.push(w);
            self.accepted += 1;
            self.pending.remove(&seq);
        }
    }

    /// Finalizes everything still pending (end of stream).
    fn flush(&mut self) {
        self.finalize_below(u64::MAX);
    }
}

/// The consumer side: one reordering stage + ring per node slot.
#[derive(Debug)]
pub struct Collector {
    nodes: Vec<NodeIngest>,
    backpressure_dropped: u64,
    /// Lane template, retained so [`Collector::add_node_slots`] can grow
    /// the slot set after construction.
    t0: f64,
    dt: f64,
    ring_capacity: usize,
    lateness: u64,
}

impl Collector {
    /// Creates a collector for `node_slots` nodes whose sample streams
    /// share origin `t0` and interval `dt`.
    pub fn new(node_slots: usize, t0: f64, dt: f64, cfg: &IngestConfig) -> Result<Self> {
        cfg.validate()?;
        if node_slots == 0 {
            return Err(TelemetryError::InvalidConfig {
                field: "node_slots",
                reason: "collector needs at least one node slot",
            });
        }
        let nodes = (0..node_slots)
            .map(|_| NodeIngest::new(t0, dt, cfg.ring_capacity, cfg.lateness))
            .collect::<Result<Vec<_>>>()?;
        Ok(Collector {
            nodes,
            backpressure_dropped: 0,
            t0,
            dt,
            ring_capacity: cfg.ring_capacity,
            lateness: cfg.lateness,
        })
    }

    /// Number of node slots.
    pub fn node_slots(&self) -> usize {
        self.nodes.len()
    }

    /// Grows the slot set to at least `node_slots` lanes, each fresh and
    /// empty. Existing lanes (and their counters) are untouched, so a
    /// long-lived campaign can allocate ring memory only for the nodes
    /// it actually meters. No-op if the collector is already that large.
    pub fn ensure_node_slots(&mut self, node_slots: usize) -> Result<()> {
        while self.nodes.len() < node_slots {
            self.nodes.push(NodeIngest::new(
                self.t0,
                self.dt,
                self.ring_capacity,
                self.lateness,
            )?);
        }
        Ok(())
    }

    /// Samples offered but still buffered ahead of a watermark (not yet
    /// finalized into a ring, hence in neither `accepted` nor any drop
    /// counter).
    pub fn pending(&self) -> u64 {
        self.nodes.iter().map(|n| n.pending.len() as u64).sum()
    }

    /// Ingests one sample. Unknown node slots are rejected.
    pub fn ingest(&mut self, s: Sample) -> Result<()> {
        let slot = self
            .nodes
            .get_mut(s.node)
            .ok_or(TelemetryError::InvalidConfig {
                field: "node",
                reason: "sample names a node slot outside the collector",
            })?;
        slot.offer(s.seq, s.watts);
        Ok(())
    }

    /// Finalizes all buffered samples; call once the stream has ended.
    pub fn flush(&mut self) {
        for n in &mut self.nodes {
            n.flush();
        }
    }

    /// The ring for node slot `node`.
    pub fn ring(&self, node: usize) -> Option<&RingBuffer> {
        self.nodes.get(node).map(|n| &n.ring)
    }

    /// Per-node watermark (first sequence number not yet finalized).
    pub fn watermark(&self, node: usize) -> Option<u64> {
        self.nodes.get(node).map(|n| n.watermark())
    }

    fn add_backpressure_drops(&mut self, n: u64) {
        self.backpressure_dropped += n;
    }

    /// Aggregate counters across every node slot.
    pub fn stats(&self) -> IngestStats {
        let mut s = IngestStats {
            backpressure_dropped: self.backpressure_dropped,
            ..IngestStats::default()
        };
        for n in &self.nodes {
            s.accepted += n.accepted;
            s.late_dropped += n.late_dropped;
            s.gaps += n.gaps;
            s.reordered += n.reordered;
            s.duplicates += n.duplicates;
        }
        s
    }
}

/// Runs `sources` through a bounded mpsc channel into `collector`, one
/// producer thread per source, consuming on the calling thread.
///
/// Returns when every producer has finished and the channel has drained;
/// the collector is *not* flushed, so the caller can keep streaming more
/// batches into it before finalizing.
pub fn run_pipeline(
    collector: &mut Collector,
    sources: &[Vec<Sample>],
    channel_capacity: usize,
    policy: BackpressurePolicy,
) -> Result<()> {
    if channel_capacity == 0 {
        return Err(TelemetryError::InvalidConfig {
            field: "channel_capacity",
            reason: "channel capacity must be at least 1",
        });
    }
    let shed = AtomicU64::new(0);
    let (tx, rx) = mpsc::sync_channel::<Sample>(channel_capacity);
    let mut result = Ok(());
    std::thread::scope(|scope| {
        for source in sources {
            let tx = tx.clone();
            let shed = &shed;
            scope.spawn(move || {
                for &s in source {
                    match policy {
                        BackpressurePolicy::Block => {
                            // The consumer lives past the scope body, so
                            // send only fails if it panicked; give up then.
                            if tx.send(s).is_err() {
                                return;
                            }
                        }
                        BackpressurePolicy::DropNewest => match tx.try_send(s) {
                            Ok(()) => {}
                            Err(mpsc::TrySendError::Full(_)) => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(mpsc::TrySendError::Disconnected(_)) => return,
                        },
                    }
                }
            });
        }
        // Drop our clone so the channel closes once producers finish.
        drop(tx);
        for s in rx {
            if let Err(e) = collector.ingest(s) {
                result = Err(e);
                break;
            }
        }
    });
    collector.add_backpressure_drops(shed.load(Ordering::Relaxed));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(lateness: u64) -> IngestConfig {
        IngestConfig {
            lateness,
            ring_capacity: 64,
            channel_capacity: 8,
            backpressure: BackpressurePolicy::Block,
        }
    }

    #[test]
    fn config_validation() {
        assert!(IngestConfig::default().validate().is_ok());
        assert!(IngestConfig {
            ring_capacity: 0,
            ..IngestConfig::default()
        }
        .validate()
        .is_err());
        assert!(IngestConfig {
            channel_capacity: 0,
            ..IngestConfig::default()
        }
        .validate()
        .is_err());
        assert!(IngestConfig {
            lateness: 4096,
            ..IngestConfig::default()
        }
        .validate()
        .is_err());
        assert!(Collector::new(0, 0.0, 1.0, &cfg(0)).is_err());
    }

    #[test]
    fn in_order_stream_is_accepted_verbatim() {
        let mut c = Collector::new(1, 0.0, 1.0, &cfg(4)).unwrap();
        for seq in 0..10 {
            c.ingest(Sample {
                node: 0,
                seq,
                watts: seq as f64,
            })
            .unwrap();
        }
        c.flush();
        let s = c.stats();
        assert_eq!(s.accepted, 10);
        assert_eq!(s.reordered, 0);
        assert_eq!(s.dropped(), 0);
        assert_eq!(s.gaps, 0);
        assert_eq!(c.ring(0).unwrap().window_average(0.0, 10.0).unwrap(), 4.5);
    }

    #[test]
    fn bounded_reordering_is_repaired() {
        let mut c = Collector::new(1, 0.0, 1.0, &cfg(3)).unwrap();
        // Swapped pairs: displacement 1, well inside lateness 3.
        for seq in [1u64, 0, 3, 2, 5, 4, 7, 6] {
            c.ingest(Sample {
                node: 0,
                seq,
                watts: seq as f64,
            })
            .unwrap();
        }
        c.flush();
        let s = c.stats();
        assert_eq!(s.accepted, 8);
        assert_eq!(s.late_dropped, 0);
        assert_eq!(s.gaps, 0);
        assert!(s.reordered > 0);
        let ring = c.ring(0).unwrap();
        // Repaired to true order: sample k holds value k.
        for k in 0..8 {
            assert_eq!(ring.get(k), Some(k as f64));
        }
    }

    #[test]
    fn samples_behind_the_watermark_are_dropped_and_counted() {
        let mut c = Collector::new(1, 0.0, 1.0, &cfg(2)).unwrap();
        for seq in 0..10 {
            c.ingest(Sample {
                node: 0,
                seq,
                watts: 1.0,
            })
            .unwrap();
        }
        // Watermark is now 8 (= 10 - lateness 2): seq 3 is far too late.
        c.ingest(Sample {
            node: 0,
            seq: 3,
            watts: 999.0,
        })
        .unwrap();
        c.flush();
        let s = c.stats();
        assert_eq!(s.accepted, 10);
        assert_eq!(s.late_dropped, 1);
        // The late duplicate did not overwrite the finalized value.
        assert_eq!(c.ring(0).unwrap().get(3), Some(1.0));
    }

    #[test]
    fn in_flight_duplicates_keep_first_value_and_are_counted() {
        let mut c = Collector::new(1, 0.0, 1.0, &cfg(4)).unwrap();
        for (seq, watts) in [(0u64, 10.0), (1, 20.0), (0, 999.0), (1, 999.0), (2, 30.0)] {
            c.ingest(Sample {
                node: 0,
                seq,
                watts,
            })
            .unwrap();
        }
        c.flush();
        let s = c.stats();
        assert_eq!(s.accepted, 3);
        assert_eq!(s.duplicates, 2);
        assert_eq!(s.dropped(), 0);
        // Accounting closes: accepted + dropped + duplicates == offered.
        assert_eq!(s.accepted + s.dropped() + s.duplicates, 5);
        // The first arrival's values survived finalization.
        let ring = c.ring(0).unwrap();
        assert_eq!(ring.get(0), Some(10.0));
        assert_eq!(ring.get(1), Some(20.0));
        assert_eq!(ring.get(2), Some(30.0));
    }

    #[test]
    fn gaps_are_filled_with_missing_placeholders() {
        let mut c = Collector::new(1, 0.0, 1.0, &cfg(0)).unwrap();
        for seq in [0u64, 1, 4, 5] {
            c.ingest(Sample {
                node: 0,
                seq,
                watts: 100.0,
            })
            .unwrap();
        }
        c.flush();
        let s = c.stats();
        assert_eq!(s.accepted, 4);
        assert_eq!(s.gaps, 2);
        let ring = c.ring(0).unwrap();
        assert_eq!(ring.len(), 6);
        assert_eq!(ring.get(2), None);
        assert_eq!(ring.get(3), None);
        // Averages skip the gap slots.
        assert_eq!(ring.window_average(0.0, 6.0).unwrap(), 100.0);
    }

    #[test]
    fn flush_finalizes_the_tail_behind_the_lateness_bound() {
        let mut c = Collector::new(1, 0.0, 1.0, &cfg(5)).unwrap();
        for seq in 0..3 {
            c.ingest(Sample {
                node: 0,
                seq,
                watts: 7.0,
            })
            .unwrap();
        }
        // Nothing finalized yet: max_seen=2, watermark boundary is 0.
        assert_eq!(c.ring(0).unwrap().len(), 0);
        c.flush();
        assert_eq!(c.ring(0).unwrap().len(), 3);
        assert_eq!(c.stats().accepted, 3);
    }

    #[test]
    fn unknown_node_slot_is_rejected() {
        let mut c = Collector::new(2, 0.0, 1.0, &cfg(0)).unwrap();
        assert!(c
            .ingest(Sample {
                node: 2,
                seq: 0,
                watts: 1.0,
            })
            .is_err());
    }

    #[test]
    fn pipeline_merges_producers_losslessly_under_block() {
        // Each producer owns a disjoint node: per-node order is preserved
        // end to end regardless of cross-producer interleaving.
        let sources: Vec<Vec<Sample>> = (0..4)
            .map(|node| {
                (0..500)
                    .map(|seq| Sample {
                        node,
                        seq,
                        watts: (node * 1000) as f64 + seq as f64,
                    })
                    .collect()
            })
            .collect();
        let mut c = Collector::new(
            4,
            0.0,
            1.0,
            &IngestConfig {
                ring_capacity: 512,
                ..cfg(0)
            },
        )
        .unwrap();
        run_pipeline(&mut c, &sources, 16, BackpressurePolicy::Block).unwrap();
        c.flush();
        let s = c.stats();
        assert_eq!(s.accepted, 2000);
        assert_eq!(s.dropped(), 0);
        assert_eq!(s.gaps, 0);
        for node in 0..4 {
            let ring = c.ring(node).unwrap();
            for seq in 0..500 {
                assert_eq!(ring.get(seq), Some((node * 1000) as f64 + seq as f64));
            }
        }
    }

    #[test]
    fn pipeline_accounts_for_shed_samples_under_drop_newest() {
        // A single tiny channel with a slow consumer cannot be forced to
        // shed deterministically, but whatever is shed must be accounted:
        // accepted + shed == offered, and gaps mark the holes.
        let sources: Vec<Vec<Sample>> = vec![(0..2000)
            .map(|seq| Sample {
                node: 0,
                seq,
                watts: 1.0,
            })
            .collect()];
        let mut c = Collector::new(1, 0.0, 1.0, &cfg(0)).unwrap();
        run_pipeline(&mut c, &sources, 1, BackpressurePolicy::DropNewest).unwrap();
        c.flush();
        let s = c.stats();
        assert_eq!(s.accepted + s.backpressure_dropped, 2000);
        assert_eq!(s.late_dropped, 0);
    }
}

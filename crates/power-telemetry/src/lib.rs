//! Streaming power telemetry and online estimation.
//!
//! The batch pipeline (`power-sim` → `power-meter` → `power-method`)
//! answers the paper's questions *after the fact*: simulate a full run,
//! then measure it. Real measurement campaigns are live — samples arrive
//! one at a time, out of order, from many collectors at once, and the
//! operator wants to know *while the run is in flight* whether enough
//! nodes have been metered to hit a target accuracy. This crate is that
//! live half:
//!
//! * [`ring`] — fixed-capacity per-node ring buffers with the same
//!   Neumaier-compensated prefix sums as `power_sim::trace`, giving O(1)
//!   sliding-window averages and energies over the retained horizon;
//! * [`ingest`] — multi-producer ingestion with watermarks: bounded
//!   reordering of late samples, gap fill for dropped ones, and explicit
//!   drop accounting (nothing is lost silently);
//! * [`online`] — per-node and fleet-level Welford state feeding a
//!   sequential stopping rule: recompute the paper's Eq. 1–2 confidence
//!   interval after every accepted node and stop as soon as the
//!   half-width reaches the target λ — the online analogue of Table 5;
//! * [`anomaly`] — streaming detectors for the fault taxonomy of
//!   `power_meter::faults`: drift (windowed mean slope), stuck registers
//!   (run length), dropped samples (watermark gaps);
//! * [`live`] — a live-campaign driver that feeds `power-sim` engine
//!   output through sampling meters sample-by-sample and stops the
//!   campaign with a defensible accuracy statement;
//! * [`plane`] — a sharded multi-campaign ingestion fabric: campaigns
//!   are partitioned across independently locked shards so thousands of
//!   concurrent campaigns share one sample plane without a global
//!   watermark bottleneck, with per-shard conservation accounting that
//!   sums exactly to the plane totals.

#![warn(missing_docs)]
// `!(a > b)` comparisons are deliberate throughout: unlike `a <= b` they
// are true for NaN inputs, so malformed windows/parameters are rejected
// instead of silently accepted.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod anomaly;
pub mod ingest;
pub mod live;
pub mod online;
pub mod plane;
pub mod ring;

pub use anomaly::{AnomalyEvent, AnomalyKind, AnomalyMonitor, DetectorConfig};
pub use ingest::{BackpressurePolicy, Collector, IngestConfig, IngestStats, Sample};
pub use live::{
    campaign_fingerprint, run_live_campaign, run_live_campaign_journaled, CampaignJournal,
    JournalReplay, LiveCampaignConfig, LiveCampaignReport,
};
pub use online::{CiQuantile, CvAssumption, Decision, SequentialEstimator, StoppingRule};
pub use plane::{IngestPlane, PlaneConfig, PlaneStats, ShardStats};
pub use ring::RingBuffer;

/// Errors produced by the telemetry subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryError {
    /// A configuration value was out of range.
    InvalidConfig {
        /// Offending field.
        field: &'static str,
        /// Violated constraint.
        reason: &'static str,
    },
    /// A window query did not overlap any retained samples.
    EmptyWindow,
    /// The queried span has been evicted from the ring's retained horizon.
    Evicted {
        /// Oldest sequence number still retained.
        oldest_retained: u64,
    },
    /// An underlying statistics call failed.
    Stats(power_stats::StatsError),
    /// An underlying simulation call failed.
    Sim(power_sim::SimError),
    /// An underlying metering call failed.
    Meter(power_meter::MeterError),
    /// An underlying methodology call failed.
    Method(power_method::MethodError),
    /// A campaign journal failed or disagrees with the campaign it is
    /// being replayed into (wrong fingerprint, out-of-order nodes, I/O).
    Journal(String),
}

impl std::fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TelemetryError::InvalidConfig { field, reason } => {
                write!(f, "invalid telemetry config `{field}`: {reason}")
            }
            TelemetryError::EmptyWindow => write!(f, "window overlaps no retained samples"),
            TelemetryError::Evicted { oldest_retained } => write!(
                f,
                "span evicted from ring (oldest retained seq = {oldest_retained})"
            ),
            TelemetryError::Stats(e) => write!(f, "stats error: {e}"),
            TelemetryError::Sim(e) => write!(f, "simulation error: {e}"),
            TelemetryError::Meter(e) => write!(f, "meter error: {e}"),
            TelemetryError::Method(e) => write!(f, "methodology error: {e}"),
            TelemetryError::Journal(what) => write!(f, "campaign journal error: {what}"),
        }
    }
}

impl std::error::Error for TelemetryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TelemetryError::Stats(e) => Some(e),
            TelemetryError::Sim(e) => Some(e),
            TelemetryError::Meter(e) => Some(e),
            TelemetryError::Method(e) => Some(e),
            _ => None,
        }
    }
}

impl From<power_stats::StatsError> for TelemetryError {
    fn from(e: power_stats::StatsError) -> Self {
        TelemetryError::Stats(e)
    }
}

impl From<power_sim::SimError> for TelemetryError {
    fn from(e: power_sim::SimError) -> Self {
        TelemetryError::Sim(e)
    }
}

impl From<power_meter::MeterError> for TelemetryError {
    fn from(e: power_meter::MeterError) -> Self {
        TelemetryError::Meter(e)
    }
}

impl From<power_method::MethodError> for TelemetryError {
    fn from(e: power_method::MethodError) -> Self {
        TelemetryError::Method(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TelemetryError>;

//! Streaming detectors for the meter-fault taxonomy.
//!
//! `power_meter::faults` can inject three undramatic failure modes —
//! gain drift, stuck registers, dropped samples. Offline they are easy
//! to find; a live campaign has to notice them *while metering*, because
//! a drifting node silently biases the fleet mean the stopping rule is
//! converging on. Each detector is O(1) per sample:
//!
//! * **drift** — two adjacent windows of `drift_window` samples over a
//!   small internal [`RingBuffer`]; the relative slope between their
//!   means, extrapolated to an hour, is compared against a threshold
//!   (with hysteresis so a borderline node fires once, not per sample);
//! * **stuck** — run length of consecutive samples within a tolerance of
//!   each other; a frozen register repeats its last value exactly;
//! * **gap** — run length of missing placeholders the ingestion
//!   watermark finalized; meters that drop samples leave these behind.

use crate::ring::RingBuffer;
use crate::{Result, TelemetryError};
use serde::{Deserialize, Serialize};

/// What kind of anomaly fired.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AnomalyKind {
    /// Windowed mean slope exceeded the drift threshold.
    Drift {
        /// Estimated relative drift per hour at the moment of firing.
        slope_per_hour: f64,
    },
    /// A register repeated the same value too many times.
    Stuck {
        /// Length of the equal-value run when the detector fired.
        run_len: u64,
    },
    /// Too many consecutive samples never arrived.
    Gap {
        /// Length of the missing run when the detector fired.
        missing: u64,
    },
}

/// One detector firing, locatable in node, sequence and time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnomalyEvent {
    /// Node slot the event belongs to.
    pub node: usize,
    /// Sequence number of the sample that triggered it.
    pub seq: u64,
    /// Start time of that sample's slot, in seconds.
    pub t: f64,
    /// The anomaly.
    pub kind: AnomalyKind,
}

/// Detector thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Samples per half-window of the drift slope estimator.
    pub drift_window: usize,
    /// Relative drift per hour that fires the drift detector.
    pub drift_threshold_per_hour: f64,
    /// Consecutive near-equal samples that fire the stuck detector.
    pub stuck_run: u64,
    /// Two samples within this many watts count as "equal" for the
    /// stuck detector (0.0 demands bit-exact repetition).
    pub stuck_tolerance_w: f64,
    /// Consecutive missing samples that fire the gap detector.
    pub gap_threshold: u64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            drift_window: 600,
            drift_threshold_per_hour: 0.02,
            stuck_run: 30,
            stuck_tolerance_w: 0.0,
            gap_threshold: 10,
        }
    }
}

impl DetectorConfig {
    /// Validates the thresholds.
    pub fn validate(&self) -> Result<()> {
        if self.drift_window < 2 {
            return Err(TelemetryError::InvalidConfig {
                field: "drift_window",
                reason: "drift half-window needs at least 2 samples",
            });
        }
        if !(self.drift_threshold_per_hour > 0.0 && self.drift_threshold_per_hour.is_finite()) {
            return Err(TelemetryError::InvalidConfig {
                field: "drift_threshold_per_hour",
                reason: "drift threshold must be positive and finite",
            });
        }
        if self.stuck_run < 2 {
            return Err(TelemetryError::InvalidConfig {
                field: "stuck_run",
                reason: "stuck run length must be at least 2",
            });
        }
        if !(self.stuck_tolerance_w >= 0.0 && self.stuck_tolerance_w.is_finite()) {
            return Err(TelemetryError::InvalidConfig {
                field: "stuck_tolerance_w",
                reason: "stuck tolerance must be non-negative and finite",
            });
        }
        if self.gap_threshold == 0 {
            return Err(TelemetryError::InvalidConfig {
                field: "gap_threshold",
                reason: "gap threshold must be at least 1",
            });
        }
        Ok(())
    }
}

/// Per-node streaming state.
#[derive(Debug, Clone)]
struct NodeDetector {
    cfg: DetectorConfig,
    /// Recent-history ring for the drift slope; holds exactly the two
    /// half-windows the slope compares.
    recent: RingBuffer,
    last_value: Option<f64>,
    stuck_run: u64,
    stuck_fired: bool,
    missing_run: u64,
    gap_fired: bool,
    drift_armed: bool,
    seq: u64,
}

impl NodeDetector {
    fn new(t0: f64, dt: f64, cfg: DetectorConfig) -> Result<Self> {
        Ok(NodeDetector {
            cfg,
            recent: RingBuffer::new(t0, dt, 2 * cfg.drift_window)?,
            last_value: None,
            stuck_run: 1,
            stuck_fired: false,
            missing_run: 0,
            gap_fired: false,
            drift_armed: true,
            seq: 0,
        })
    }

    fn observe(&mut self, watts: f64, out: &mut Vec<AnomalyEvent>, node: usize) {
        let seq = self.seq;
        self.seq += 1;
        let t = self.recent.t0() + seq as f64 * self.recent.dt();
        // Gap run ends on any delivered sample.
        self.missing_run = 0;
        self.gap_fired = false;
        // Stuck: run length of near-equal values, firing once per run.
        match self.last_value {
            Some(prev) if (watts - prev).abs() <= self.cfg.stuck_tolerance_w => {
                self.stuck_run += 1;
                if self.stuck_run >= self.cfg.stuck_run && !self.stuck_fired {
                    self.stuck_fired = true;
                    out.push(AnomalyEvent {
                        node,
                        seq,
                        t,
                        kind: AnomalyKind::Stuck {
                            run_len: self.stuck_run,
                        },
                    });
                }
            }
            _ => {
                self.stuck_run = 1;
                self.stuck_fired = false;
            }
        }
        self.last_value = Some(watts);
        // Drift: slope between the two retained half-windows.
        self.recent.push(watts);
        let w = self.cfg.drift_window;
        if self.recent.len() == 2 * w {
            let dt = self.recent.dt();
            let hi = self.recent.t_end();
            let mid = hi - w as f64 * dt;
            let lo = self.recent.t_start();
            if let (Ok(older), Ok(newer)) = (
                self.recent.window_average(lo, mid),
                self.recent.window_average(mid, hi),
            ) {
                let scale = 0.5 * (older.abs() + newer.abs());
                if scale > 0.0 {
                    let slope_per_hour = (newer - older) / (w as f64 * dt) * 3600.0 / scale;
                    let thr = self.cfg.drift_threshold_per_hour;
                    if slope_per_hour.abs() >= thr {
                        if self.drift_armed {
                            self.drift_armed = false;
                            out.push(AnomalyEvent {
                                node,
                                seq,
                                t,
                                kind: AnomalyKind::Drift { slope_per_hour },
                            });
                        }
                    } else if slope_per_hour.abs() < 0.5 * thr {
                        // Hysteresis: re-arm only once clearly below.
                        self.drift_armed = true;
                    }
                }
            }
        }
    }

    fn observe_missing(&mut self, out: &mut Vec<AnomalyEvent>, node: usize) {
        let seq = self.seq;
        self.seq += 1;
        let t = self.recent.t0() + seq as f64 * self.recent.dt();
        self.recent.push_missing();
        self.missing_run += 1;
        if self.missing_run >= self.cfg.gap_threshold && !self.gap_fired {
            self.gap_fired = true;
            out.push(AnomalyEvent {
                node,
                seq,
                t,
                kind: AnomalyKind::Gap {
                    missing: self.missing_run,
                },
            });
        }
        // A hole also breaks any equal-value run.
        self.last_value = None;
        self.stuck_run = 1;
        self.stuck_fired = false;
    }
}

/// Streaming anomaly detection across a fleet of node slots.
#[derive(Debug, Clone)]
pub struct AnomalyMonitor {
    nodes: Vec<NodeDetector>,
    events: Vec<AnomalyEvent>,
}

impl AnomalyMonitor {
    /// Creates detectors for `node_slots` nodes whose streams share
    /// origin `t0` and interval `dt`.
    pub fn new(node_slots: usize, t0: f64, dt: f64, cfg: DetectorConfig) -> Result<Self> {
        cfg.validate()?;
        if node_slots == 0 {
            return Err(TelemetryError::InvalidConfig {
                field: "node_slots",
                reason: "monitor needs at least one node slot",
            });
        }
        let nodes = (0..node_slots)
            .map(|_| NodeDetector::new(t0, dt, cfg))
            .collect::<Result<Vec<_>>>()?;
        Ok(AnomalyMonitor {
            nodes,
            events: Vec::new(),
        })
    }

    /// Feeds one delivered sample for `node` (samples must be fed in
    /// finalized sequence order, e.g. by replaying an ingestion ring).
    pub fn observe(&mut self, node: usize, watts: f64) -> Result<()> {
        let events = &mut self.events;
        self.nodes
            .get_mut(node)
            .ok_or(TelemetryError::InvalidConfig {
                field: "node",
                reason: "observation names a node slot outside the monitor",
            })?
            .observe(watts, events, node);
        Ok(())
    }

    /// Feeds one missing-sample placeholder for `node`.
    pub fn observe_missing(&mut self, node: usize) -> Result<()> {
        let events = &mut self.events;
        self.nodes
            .get_mut(node)
            .ok_or(TelemetryError::InvalidConfig {
                field: "node",
                reason: "observation names a node slot outside the monitor",
            })?
            .observe_missing(events, node);
        Ok(())
    }

    /// Every event fired so far, in firing order.
    pub fn events(&self) -> &[AnomalyEvent] {
        &self.events
    }

    /// Number of events of each kind: `(drift, stuck, gap)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for e in &self.events {
            match e.kind {
                AnomalyKind::Drift { .. } => c.0 += 1,
                AnomalyKind::Stuck { .. } => c.1 += 1,
                AnomalyKind::Gap { .. } => c.2 += 1,
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use power_stats::rng::{seeded, StandardNormal};

    // Drift half-window of 600 samples: at 1% sample noise the slope
    // estimator's noise floor is ~0.0035/hr, leaving the 0.02/hr
    // threshold at ~6 sigma — no false fires on clean streams.
    fn cfg() -> DetectorConfig {
        DetectorConfig {
            drift_window: 600,
            drift_threshold_per_hour: 0.02,
            stuck_run: 10,
            stuck_tolerance_w: 0.0,
            gap_threshold: 5,
        }
    }

    #[test]
    fn config_validation() {
        assert!(DetectorConfig::default().validate().is_ok());
        assert!(DetectorConfig {
            drift_window: 1,
            ..cfg()
        }
        .validate()
        .is_err());
        assert!(DetectorConfig {
            drift_threshold_per_hour: 0.0,
            ..cfg()
        }
        .validate()
        .is_err());
        assert!(DetectorConfig {
            stuck_run: 1,
            ..cfg()
        }
        .validate()
        .is_err());
        assert!(DetectorConfig {
            gap_threshold: 0,
            ..cfg()
        }
        .validate()
        .is_err());
        assert!(AnomalyMonitor::new(0, 0.0, 1.0, cfg()).is_err());
    }

    #[test]
    fn clean_noisy_stream_fires_nothing() {
        let mut m = AnomalyMonitor::new(1, 0.0, 1.0, cfg()).unwrap();
        let mut rng = seeded(11);
        let mut gauss = StandardNormal::new();
        for _ in 0..2000 {
            m.observe(0, 400.0 * (1.0 + 0.01 * gauss.sample(&mut rng)))
                .unwrap();
        }
        assert_eq!(m.events(), &[], "false positives: {:?}", m.events());
    }

    #[test]
    fn stuck_register_fires_once_per_run() {
        let mut m = AnomalyMonitor::new(1, 0.0, 1.0, cfg()).unwrap();
        let mut rng = seeded(12);
        let mut gauss = StandardNormal::new();
        for _ in 0..50 {
            m.observe(0, 400.0 + gauss.sample(&mut rng)).unwrap();
        }
        for _ in 0..40 {
            m.observe(0, 412.5).unwrap();
        }
        let (drift, stuck, gap) = m.counts();
        assert_eq!((drift, stuck, gap), (0, 1, 0), "{:?}", m.events());
        let e = m.events()[0];
        assert_eq!(e.node, 0);
        assert!(matches!(e.kind, AnomalyKind::Stuck { run_len: 10 }));
        // The run began at seq 50; firing lands at its 10th member.
        assert_eq!(e.seq, 59);
        // A fresh value then a second freeze fires again.
        m.observe(0, 390.0).unwrap();
        for _ in 0..15 {
            m.observe(0, 390.0).unwrap();
        }
        assert_eq!(m.counts().1, 2);
    }

    #[test]
    fn watermark_gaps_fire_once_per_hole() {
        let mut m = AnomalyMonitor::new(2, 0.0, 1.0, cfg()).unwrap();
        let mut rng = seeded(13);
        let mut gauss = StandardNormal::new();
        for _ in 0..20 {
            m.observe(1, 400.0 + gauss.sample(&mut rng)).unwrap();
        }
        for _ in 0..8 {
            m.observe_missing(1).unwrap();
        }
        for _ in 0..20 {
            m.observe(1, 400.0 + gauss.sample(&mut rng)).unwrap();
        }
        let (drift, stuck, gap) = m.counts();
        assert_eq!((drift, stuck, gap), (0, 0, 1), "{:?}", m.events());
        let e = m.events()[0];
        assert_eq!(e.node, 1);
        assert!(matches!(e.kind, AnomalyKind::Gap { missing: 5 }));
        assert_eq!(e.seq, 24);
        // Short holes below the threshold stay quiet.
        for _ in 0..3 {
            m.observe_missing(1).unwrap();
        }
        m.observe(1, 400.0).unwrap();
        assert_eq!(m.counts().2, 1);
    }

    #[test]
    fn drift_fires_on_ramp_with_hysteresis() {
        let mut m = AnomalyMonitor::new(1, 0.0, 1.0, cfg()).unwrap();
        let mut rng = seeded(14);
        let mut gauss = StandardNormal::new();
        // Flat lead-in, then a 10%/hour ramp: unambiguous for the
        // detector's 2x600 s slope window.
        for _ in 0..600 {
            m.observe(0, 400.0 * (1.0 + 0.002 * gauss.sample(&mut rng)))
                .unwrap();
        }
        for k in 0..2400 {
            let drifted = 400.0 * (1.0 + 0.10 * (k as f64 / 3600.0));
            m.observe(0, drifted * (1.0 + 0.002 * gauss.sample(&mut rng)))
                .unwrap();
        }
        let (drift, stuck, gap) = m.counts();
        assert!(drift >= 1, "drift never fired: {:?}", m.counts());
        assert_eq!((stuck, gap), (0, 0));
        // Hysteresis keeps a steady ramp from firing every sample.
        assert!(drift <= 3, "drift fired {drift} times");
        let e = m
            .events()
            .iter()
            .find(|e| matches!(e.kind, AnomalyKind::Drift { .. }))
            .unwrap();
        if let AnomalyKind::Drift { slope_per_hour } = e.kind {
            assert!(
                (0.02..0.5).contains(&slope_per_hour),
                "slope {slope_per_hour}"
            );
        }
    }

    #[test]
    fn unknown_node_is_rejected() {
        let mut m = AnomalyMonitor::new(1, 0.0, 1.0, cfg()).unwrap();
        assert!(m.observe(1, 400.0).is_err());
        assert!(m.observe_missing(7).is_err());
    }
}

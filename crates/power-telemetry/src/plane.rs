//! Partitioned ingest plane: many campaigns, one sample fabric.
//!
//! [`ingest::Collector`](crate::ingest::Collector) serves exactly one
//! campaign: one set of node lanes behind one consumer. A fleet that
//! meters hundreds of machines concurrently cannot funnel every
//! producer through that single watermark — the lock protecting the
//! lone collector becomes the plane-wide bottleneck the moment two
//! campaigns ingest at once.
//!
//! [`IngestPlane`] partitions the fabric instead. Campaigns are
//! assigned to one of `S` **shards** by `campaign_id mod S`; each shard
//! is an independently locked set of per-campaign collectors, so
//! producers feeding campaigns on different shards hand their batches
//! off in parallel and never contend. Within a shard the existing
//! watermark machinery applies unchanged, per campaign, per node lane:
//! bounded reordering, gap fill, duplicate suppression.
//!
//! Accounting is the plane's contract. Every shard counts `offered`
//! at hand-off and the lane counters classify each sample exactly once,
//! so per shard — and therefore plane-wide, as a sum of disjoint
//! shards —
//!
//! ```text
//! accepted + late_dropped + duplicates + pending == offered
//! ```
//!
//! holds at every instant ([`ShardStats::conserved`]). Retiring a
//! campaign folds its counters into the shard's `retired` bucket rather
//! than forgetting them, so the identity survives campaign churn: the
//! plane's lifetime totals never shrink.

use crate::ingest::{Collector, IngestConfig, IngestStats, Sample};
use crate::{Result, TelemetryError};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Plane-level configuration: only the shard count — lane geometry
/// (lateness, ring capacity, sample interval) is chosen per campaign at
/// [`IngestPlane::register`] time.
#[derive(Debug, Clone, Copy)]
pub struct PlaneConfig {
    /// Number of independently locked shards. More shards mean less
    /// producer contention; memory cost is one mutex + map per shard.
    pub shards: usize,
}

impl Default for PlaneConfig {
    fn default() -> Self {
        PlaneConfig { shards: 16 }
    }
}

impl PlaneConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(TelemetryError::InvalidConfig {
                field: "shards",
                reason: "plane needs at least one shard",
            });
        }
        Ok(())
    }
}

/// One campaign's lane set plus its hand-off counter.
#[derive(Debug)]
struct Lane {
    collector: Collector,
    offered: u64,
}

/// A shard: independently locked slice of the plane.
#[derive(Debug, Default)]
struct Shard {
    lanes: BTreeMap<u64, Lane>,
    /// Counters of campaigns retired from this shard, folded in at
    /// deregistration so plane totals are monotone.
    retired: IngestStats,
    retired_offered: u64,
}

/// Snapshot of one shard's accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Campaigns currently registered on the shard.
    pub campaigns: u64,
    /// Samples handed off to this shard (including ones later dropped),
    /// live and retired campaigns alike.
    pub offered: u64,
    /// Samples still buffered ahead of a watermark.
    pub pending: u64,
    /// Classified samples (accepted / dropped / duplicate / …) summed
    /// over live and retired campaigns.
    pub ingest: IngestStats,
}

impl ShardStats {
    /// The shard conservation law: every offered sample is accepted,
    /// dropped, a duplicate, or still pending — exactly one of them.
    pub fn conserved(&self) -> bool {
        self.ingest.accepted + self.ingest.dropped() + self.ingest.duplicates + self.pending
            == self.offered
    }

    fn add(&mut self, other: &ShardStats) {
        self.campaigns += other.campaigns;
        self.offered += other.offered;
        self.pending += other.pending;
        self.ingest.accepted += other.ingest.accepted;
        self.ingest.late_dropped += other.ingest.late_dropped;
        self.ingest.backpressure_dropped += other.ingest.backpressure_dropped;
        self.ingest.gaps += other.ingest.gaps;
        self.ingest.reordered += other.ingest.reordered;
        self.ingest.duplicates += other.ingest.duplicates;
    }
}

/// Plane-wide totals: the sum of every shard's snapshot.
pub type PlaneStats = ShardStats;

/// A sharded, concurrently writable ingestion fabric for many
/// campaigns. See the module docs for the partitioning and accounting
/// contracts.
#[derive(Debug)]
pub struct IngestPlane {
    shards: Vec<Mutex<Shard>>,
}

impl IngestPlane {
    /// Creates an empty plane with `cfg.shards` shards.
    pub fn new(cfg: PlaneConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(IngestPlane {
            shards: (0..cfg.shards)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a campaign's lanes live on.
    pub fn shard_of(&self, campaign: u64) -> usize {
        (campaign % self.shards.len() as u64) as usize
    }

    fn shard(&self, campaign: u64) -> &Mutex<Shard> {
        &self.shards[self.shard_of(campaign)]
    }

    fn unknown() -> TelemetryError {
        TelemetryError::InvalidConfig {
            field: "campaign",
            reason: "campaign is not registered on the plane",
        }
    }

    /// Registers a campaign's lane set on its shard. `node_slots` lanes
    /// are allocated up front; [`IngestPlane::ensure_slots`] grows the
    /// set later so memory tracks metered nodes, not the population.
    pub fn register(
        &self,
        campaign: u64,
        node_slots: usize,
        t0: f64,
        dt: f64,
        cfg: &IngestConfig,
    ) -> Result<()> {
        let collector = Collector::new(node_slots, t0, dt, cfg)?;
        let mut shard = self.shard(campaign).lock().expect("plane shard poisoned");
        if shard.lanes.contains_key(&campaign) {
            return Err(TelemetryError::InvalidConfig {
                field: "campaign",
                reason: "campaign already registered on the plane",
            });
        }
        shard.lanes.insert(
            campaign,
            Lane {
                collector,
                offered: 0,
            },
        );
        Ok(())
    }

    /// Removes a campaign's lanes, folding its counters into the
    /// shard's retired bucket so plane totals are preserved. Pending
    /// samples are finalized first (a retired campaign can no longer be
    /// displaced). Returns whether the campaign was present.
    pub fn deregister(&self, campaign: u64) -> bool {
        let mut shard = self.shard(campaign).lock().expect("plane shard poisoned");
        match shard.lanes.remove(&campaign) {
            None => false,
            Some(mut lane) => {
                lane.collector.flush();
                let s = lane.collector.stats();
                shard.retired.accepted += s.accepted;
                shard.retired.late_dropped += s.late_dropped;
                shard.retired.backpressure_dropped += s.backpressure_dropped;
                shard.retired.gaps += s.gaps;
                shard.retired.reordered += s.reordered;
                shard.retired.duplicates += s.duplicates;
                shard.retired_offered += lane.offered;
                true
            }
        }
    }

    /// Grows a campaign's lane set to at least `node_slots` lanes.
    pub fn ensure_slots(&self, campaign: u64, node_slots: usize) -> Result<()> {
        let mut shard = self.shard(campaign).lock().expect("plane shard poisoned");
        let lane = shard.lanes.get_mut(&campaign).ok_or_else(Self::unknown)?;
        lane.collector.ensure_node_slots(node_slots)
    }

    /// Hands a batch of samples for one campaign off to its shard: one
    /// lock acquisition per batch, however large. A sample counts as
    /// offered once the lane has classified it (accepted, late, or
    /// duplicate — all count); a sample naming a lane outside the
    /// campaign's slot set fails the batch *without* being counted, so
    /// the conservation law never sees an unclassified offer.
    pub fn offer(&self, campaign: u64, samples: &[Sample]) -> Result<()> {
        let mut shard = self.shard(campaign).lock().expect("plane shard poisoned");
        let lane = shard.lanes.get_mut(&campaign).ok_or_else(Self::unknown)?;
        for s in samples {
            lane.collector.ingest(*s)?;
            lane.offered += 1;
        }
        Ok(())
    }

    /// Finalizes every pending sample for one campaign (end of its
    /// current streams).
    pub fn flush(&self, campaign: u64) -> Result<()> {
        let mut shard = self.shard(campaign).lock().expect("plane shard poisoned");
        let lane = shard.lanes.get_mut(&campaign).ok_or_else(Self::unknown)?;
        lane.collector.flush();
        Ok(())
    }

    /// Runs a closure against one campaign's collector (read-only),
    /// e.g. to take window averages or watermarks. Returns `None` for
    /// an unregistered campaign.
    pub fn with_campaign<T>(&self, campaign: u64, f: impl FnOnce(&Collector) -> T) -> Option<T> {
        let shard = self.shard(campaign).lock().expect("plane shard poisoned");
        shard.lanes.get(&campaign).map(|lane| f(&lane.collector))
    }

    /// One campaign's watermark on lane `node`.
    pub fn watermark(&self, campaign: u64, node: usize) -> Option<u64> {
        self.with_campaign(campaign, |c| c.watermark(node))
            .flatten()
    }

    /// One campaign's classified-counter snapshot plus offered count.
    pub fn campaign_stats(&self, campaign: u64) -> Option<(IngestStats, u64)> {
        let shard = self.shard(campaign).lock().expect("plane shard poisoned");
        shard
            .lanes
            .get(&campaign)
            .map(|l| (l.collector.stats(), l.offered))
    }

    /// Snapshot of shard `index`'s accounting.
    pub fn shard_stats(&self, index: usize) -> ShardStats {
        let shard = self.shards[index].lock().expect("plane shard poisoned");
        let mut out = ShardStats {
            campaigns: shard.lanes.len() as u64,
            offered: shard.retired_offered,
            pending: 0,
            ingest: shard.retired,
        };
        for lane in shard.lanes.values() {
            let s = lane.collector.stats();
            out.offered += lane.offered;
            out.pending += lane.collector.pending();
            out.ingest.accepted += s.accepted;
            out.ingest.late_dropped += s.late_dropped;
            out.ingest.backpressure_dropped += s.backpressure_dropped;
            out.ingest.gaps += s.gaps;
            out.ingest.reordered += s.reordered;
            out.ingest.duplicates += s.duplicates;
        }
        out
    }

    /// Plane-wide totals: the sum over all shards.
    pub fn stats(&self) -> PlaneStats {
        let mut total = PlaneStats::default();
        for i in 0..self.shards.len() {
            total.add(&self.shard_stats(i));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(lateness: u64, ring: usize) -> IngestConfig {
        IngestConfig {
            lateness,
            ring_capacity: ring,
            ..IngestConfig::default()
        }
    }

    fn sample(node: usize, seq: u64, watts: f64) -> Sample {
        Sample { node, seq, watts }
    }

    #[test]
    fn shards_partition_campaigns_and_conserve() {
        let plane = IngestPlane::new(PlaneConfig { shards: 4 }).unwrap();
        for id in 0..10u64 {
            plane.register(id, 2, 0.0, 1.0, &cfg(0, 8)).unwrap();
        }
        for id in 0..10u64 {
            let batch: Vec<Sample> = (0..8)
                .map(|k| sample((k % 2) as usize, k / 2, 100.0))
                .collect();
            plane.offer(id, &batch).unwrap();
        }
        // Duplicate + late traffic on one campaign.
        plane
            .offer(3, &[sample(0, 0, 5.0), sample(0, 0, 5.0)])
            .unwrap();
        let total = plane.stats();
        assert_eq!(total.campaigns, 10);
        assert_eq!(total.offered, 82);
        assert!(total.conserved(), "{total:?}");
        let mut sum = PlaneStats::default();
        for i in 0..plane.shard_count() {
            let s = plane.shard_stats(i);
            assert!(s.conserved(), "shard {i}: {s:?}");
            sum.add(&s);
        }
        assert_eq!(sum, total);
    }

    #[test]
    fn deregister_folds_counters_into_retired() {
        let plane = IngestPlane::new(PlaneConfig { shards: 2 }).unwrap();
        // Lateness 2 keeps seq 0 pending, so its repeat is a true
        // in-flight duplicate rather than a late drop.
        plane.register(7, 1, 0.0, 1.0, &cfg(2, 4)).unwrap();
        plane
            .offer(
                7,
                &[sample(0, 0, 1.0), sample(0, 1, 2.0), sample(0, 0, 9.0)],
            )
            .unwrap();
        let before = plane.stats();
        assert_eq!(before.offered, 3);
        assert!(plane.deregister(7));
        assert!(!plane.deregister(7));
        let after = plane.stats();
        assert_eq!(after.campaigns, 0);
        assert_eq!(after.offered, 3);
        assert_eq!(after.ingest.accepted, 2);
        assert_eq!(after.ingest.duplicates, 1);
        assert!(after.conserved(), "{after:?}");
        // Retired campaigns reject further traffic.
        assert!(plane.offer(7, &[sample(0, 2, 1.0)]).is_err());
    }

    #[test]
    fn pending_counts_toward_conservation_until_flush() {
        let plane = IngestPlane::new(PlaneConfig::default()).unwrap();
        plane.register(0, 1, 0.0, 1.0, &cfg(4, 16)).unwrap();
        // With lateness 4, the newest arrivals stay pending.
        let batch: Vec<Sample> = (0..6).map(|k| sample(0, k, 50.0)).collect();
        plane.offer(0, &batch).unwrap();
        let s = plane.stats();
        assert_eq!(s.offered, 6);
        assert!(s.pending > 0);
        assert!(s.conserved(), "{s:?}");
        plane.flush(0).unwrap();
        let s = plane.stats();
        assert_eq!(s.pending, 0);
        assert_eq!(s.ingest.accepted, 6);
        assert!(s.conserved(), "{s:?}");
    }

    #[test]
    fn lanes_grow_on_demand() {
        let plane = IngestPlane::new(PlaneConfig::default()).unwrap();
        plane.register(1, 1, 0.0, 1.0, &cfg(0, 4)).unwrap();
        assert!(plane.offer(1, &[sample(3, 0, 1.0)]).is_err());
        plane.ensure_slots(1, 4).unwrap();
        plane.offer(1, &[sample(3, 1, 1.0)]).unwrap();
        assert_eq!(plane.watermark(1, 3), Some(2));
    }
}

//! Fixed-capacity per-node ring buffers with compensated prefix sums.
//!
//! A live campaign cannot hold a 28-hour, 1 Hz, 10,000-node trace in
//! memory the way `power_sim::trace` does. The ring keeps the most recent
//! `capacity` samples per node and, next to the circular value store, a
//! circular buffer of *running* Neumaier-compensated cumulative sums —
//! the same compensation `power_sim::trace` uses for its batch prefix
//! sums. Any sliding-window average or energy over the retained horizon
//! is then two prefix lookups: O(1) per query, no re-summation, and
//! bit-for-bit stable against the order the window is asked in.
//!
//! Missing samples (dropped by a meter or never delivered before the
//! ingestion watermark passed) occupy a slot with zero weight: they hold
//! their place in time, contribute nothing to averages, and are counted.

use crate::{Result, TelemetryError};

/// A fixed-capacity ring of power samples with O(1) window queries.
///
/// Sample `k` (the `k`-th ever pushed, `k` starting at 0) covers the time
/// span `[t0 + k·dt, t0 + (k+1)·dt)` — the same left-closed convention as
/// `power_sim::trace::SystemTrace`. Once more than `capacity` samples
/// have been pushed the oldest are evicted and queries touching them
/// return [`TelemetryError::Evicted`].
#[derive(Debug, Clone)]
pub struct RingBuffer {
    t0: f64,
    dt: f64,
    capacity: usize,
    /// Circular value store; sample `k` lives at `k % capacity`.
    values: Vec<f64>,
    /// 1.0 for a present sample, 0.0 for a missing placeholder.
    weights: Vec<f64>,
    /// Circular boundary sums: `vcum` at boundary `k` is the compensated
    /// cumulative value sum over samples `0..k`, stored at
    /// `k % (capacity + 1)`. Boundaries `start..=next` are valid — one
    /// more boundary than samples, hence the `+ 1`.
    vcum: Vec<f64>,
    /// Boundary sums of weights (integers, exactly representable).
    wcum: Vec<f64>,
    /// Oldest retained sequence number.
    start: u64,
    /// Next sequence number to be assigned.
    next: u64,
    /// Running compensated value sum (Neumaier: `vsum + vcomp` is the
    /// corrected total over every sample ever pushed).
    vsum: f64,
    vcomp: f64,
    wsum: f64,
    evicted: u64,
    missing: u64,
}

impl RingBuffer {
    /// Creates an empty ring whose first sample will cover
    /// `[t0, t0 + dt)`.
    pub fn new(t0: f64, dt: f64, capacity: usize) -> Result<Self> {
        if !(dt > 0.0 && dt.is_finite()) {
            return Err(TelemetryError::InvalidConfig {
                field: "dt",
                reason: "sample interval must be positive and finite",
            });
        }
        if !t0.is_finite() {
            return Err(TelemetryError::InvalidConfig {
                field: "t0",
                reason: "origin must be finite",
            });
        }
        if capacity == 0 {
            return Err(TelemetryError::InvalidConfig {
                field: "capacity",
                reason: "ring capacity must be at least 1",
            });
        }
        Ok(RingBuffer {
            t0,
            dt,
            capacity,
            values: vec![0.0; capacity],
            weights: vec![0.0; capacity],
            vcum: vec![0.0; capacity + 1],
            wcum: vec![0.0; capacity + 1],
            start: 0,
            next: 0,
            vsum: 0.0,
            vcomp: 0.0,
            wsum: 0.0,
            evicted: 0,
            missing: 0,
        })
    }

    /// Appends the next sample in sequence.
    pub fn push(&mut self, watts: f64) {
        self.push_raw(watts, 1.0);
    }

    /// Appends a missing-sample placeholder: it holds its time slot but
    /// carries zero weight in averages and zero energy.
    pub fn push_missing(&mut self) {
        self.missing += 1;
        self.push_raw(0.0, 0.0);
    }

    fn push_raw(&mut self, v: f64, w: f64) {
        if self.next - self.start == self.capacity as u64 {
            self.start += 1;
            self.evicted += 1;
        }
        let slot = (self.next % self.capacity as u64) as usize;
        self.values[slot] = v;
        self.weights[slot] = w;
        // Neumaier running sum: the compensation term recovers the low
        // bits lost when |vsum| and |v| differ by many orders.
        let t = self.vsum + v;
        self.vcomp += if self.vsum.abs() >= v.abs() {
            (self.vsum - t) + v
        } else {
            (v - t) + self.vsum
        };
        self.vsum = t;
        self.wsum += w;
        let boundary = ((self.next + 1) % (self.capacity as u64 + 1)) as usize;
        self.vcum[boundary] = self.vsum + self.vcomp;
        self.wcum[boundary] = self.wsum;
        self.next += 1;
    }

    /// Number of samples currently retained.
    pub fn len(&self) -> usize {
        (self.next - self.start) as usize
    }

    /// Whether no samples are retained.
    pub fn is_empty(&self) -> bool {
        self.next == self.start
    }

    /// Maximum number of retained samples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Oldest retained sequence number.
    pub fn first_seq(&self) -> u64 {
        self.start
    }

    /// The sequence number the next push will receive.
    pub fn next_seq(&self) -> u64 {
        self.next
    }

    /// Time origin of sequence number 0.
    pub fn t0(&self) -> f64 {
        self.t0
    }

    /// Sample interval in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Start of the retained horizon.
    pub fn t_start(&self) -> f64 {
        self.t0 + self.start as f64 * self.dt
    }

    /// End of the retained horizon (exclusive).
    pub fn t_end(&self) -> f64 {
        self.t0 + self.next as f64 * self.dt
    }

    /// Samples evicted so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Missing-sample placeholders pushed so far.
    pub fn missing(&self) -> u64 {
        self.missing
    }

    /// The retained sample at sequence number `seq`, or `None` if it was
    /// evicted, is missing, or has not arrived yet.
    pub fn get(&self, seq: u64) -> Option<f64> {
        if seq < self.start || seq >= self.next {
            return None;
        }
        let slot = (seq % self.capacity as u64) as usize;
        if self.weights[slot] == 0.0 {
            None
        } else {
            Some(self.values[slot])
        }
    }

    /// Compensated cumulative sums at fractional sequence coordinate `x`
    /// (valid for `start <= x <= next`): `(value_sum, weight_sum)`.
    fn cum_at(&self, x: f64) -> (f64, f64) {
        let k = (x.floor() as u64).clamp(self.start, self.next);
        let frac = x - k as f64;
        // Boundary k is the compensated sum over samples 0..k. Boundary 0
        // is never written but its slot holds the 0.0 it was initialized
        // with until the ring wraps, by which point start > 0 and the
        // clamp above keeps k away from it.
        let b = (k % (self.capacity as u64 + 1)) as usize;
        let base_v = self.vcum[b];
        let base_w = self.wcum[b];
        if frac <= 0.0 {
            return (base_v, base_w);
        }
        // frac > 0 implies k < next (callers clamp x to the horizon), so
        // sample k is retained.
        let slot = (k % self.capacity as u64) as usize;
        (
            base_v + frac * self.values[slot],
            base_w + frac * self.weights[slot],
        )
    }

    /// Validates `[from, to)` against the ring and returns it clamped to
    /// fractional sequence coordinates.
    fn clamped_span(&self, from: f64, to: f64) -> Result<(f64, f64)> {
        if !(to > from) {
            return Err(TelemetryError::InvalidConfig {
                field: "to",
                reason: "window end must exceed window start",
            });
        }
        if !(from.is_finite() && to.is_finite()) {
            return Err(TelemetryError::InvalidConfig {
                field: "from",
                reason: "window bounds must be finite",
            });
        }
        if self.is_empty() || !(to > self.t0) || !(self.t_end() > from) {
            return Err(TelemetryError::EmptyWindow);
        }
        if !(to > self.t_start()) {
            // The window overlaps the stream's lifetime but only the part
            // the ring has already discarded.
            return Err(TelemetryError::Evicted {
                oldest_retained: self.start,
            });
        }
        let lo = ((from - self.t0) / self.dt).max(self.start as f64);
        let hi = ((to - self.t0) / self.dt).min(self.next as f64);
        Ok((lo, hi))
    }

    /// Average power over `[from, to)` restricted to the retained
    /// horizon, skipping missing samples (weighted by overlap).
    ///
    /// With no missing samples this agrees with
    /// `power_sim::trace::SystemTrace::window_average` over the same
    /// series to within ~1e-9 relative.
    pub fn window_average(&self, from: f64, to: f64) -> Result<f64> {
        let (lo, hi) = self.clamped_span(from, to)?;
        let (v_lo, w_lo) = self.cum_at(lo);
        let (v_hi, w_hi) = self.cum_at(hi);
        let dw = w_hi - w_lo;
        if !(dw > 0.0) {
            // Every overlapped slot was a missing placeholder.
            return Err(TelemetryError::EmptyWindow);
        }
        Ok((v_hi - v_lo) / dw)
    }

    /// Energy in joules over `[from, to)` restricted to the retained
    /// horizon; missing samples contribute zero.
    pub fn window_energy(&self, from: f64, to: f64) -> Result<f64> {
        let (lo, hi) = self.clamped_span(from, to)?;
        let (v_lo, _) = self.cum_at(lo);
        let (v_hi, _) = self.cum_at(hi);
        Ok((v_hi - v_lo) * self.dt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_rejects_bad_parameters() {
        assert!(RingBuffer::new(0.0, 0.0, 8).is_err());
        assert!(RingBuffer::new(0.0, -1.0, 8).is_err());
        assert!(RingBuffer::new(f64::NAN, 1.0, 8).is_err());
        assert!(RingBuffer::new(0.0, 1.0, 0).is_err());
        assert!(RingBuffer::new(0.0, 1.0, 1).is_ok());
    }

    #[test]
    fn whole_sample_window_average_is_exact() {
        let mut r = RingBuffer::new(0.0, 1.0, 16).unwrap();
        for v in [100.0, 200.0, 300.0, 400.0] {
            r.push(v);
        }
        assert_eq!(r.window_average(0.0, 4.0).unwrap(), 250.0);
        assert_eq!(r.window_average(1.0, 3.0).unwrap(), 250.0);
        assert_eq!(r.window_average(3.0, 4.0).unwrap(), 400.0);
        assert_eq!(r.window_energy(0.0, 4.0).unwrap(), 1000.0);
    }

    #[test]
    fn fractional_edges_weight_by_overlap() {
        let mut r = RingBuffer::new(10.0, 2.0, 8).unwrap();
        r.push(100.0);
        r.push(300.0);
        // [11, 13): half of sample 0, half of sample 1.
        let avg = r.window_average(11.0, 13.0).unwrap();
        assert!((avg - 200.0).abs() < 1e-12, "{avg}");
        // Energy over the same span: (50 + 150) watt-samples x dt=2.
        let e = r.window_energy(11.0, 13.0).unwrap();
        assert!((e - 400.0).abs() < 1e-12, "{e}");
    }

    #[test]
    fn window_clamps_to_retained_horizon() {
        let mut r = RingBuffer::new(0.0, 1.0, 8).unwrap();
        for v in [100.0, 200.0] {
            r.push(v);
        }
        // Overhang past the live edge is clipped, not an error.
        assert_eq!(r.window_average(1.0, 50.0).unwrap(), 200.0);
        assert_eq!(r.window_average(-5.0, 1.0).unwrap(), 100.0);
    }

    #[test]
    fn eviction_advances_horizon_and_is_reported() {
        let mut r = RingBuffer::new(0.0, 1.0, 4).unwrap();
        for k in 0..10 {
            r.push(k as f64);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.first_seq(), 6);
        assert_eq!(r.evicted(), 6);
        assert_eq!(r.t_start(), 6.0);
        // Retained samples 6..10 average 7.5.
        assert_eq!(r.window_average(0.0, 10.0).unwrap(), 7.5);
        assert_eq!(r.window_average(6.0, 10.0).unwrap(), 7.5);
        // A window entirely inside the evicted prefix names the horizon.
        assert_eq!(
            r.window_average(0.0, 3.0),
            Err(TelemetryError::Evicted { oldest_retained: 6 })
        );
        // A window before the stream began is simply empty.
        assert_eq!(
            r.window_average(-10.0, -5.0),
            Err(TelemetryError::EmptyWindow)
        );
        assert_eq!(r.get(5), None);
        assert_eq!(r.get(6), Some(6.0));
        assert_eq!(r.get(10), None);
    }

    #[test]
    fn missing_samples_hold_time_but_not_weight() {
        let mut r = RingBuffer::new(0.0, 1.0, 8).unwrap();
        r.push(100.0);
        r.push_missing();
        r.push(300.0);
        assert_eq!(r.missing(), 1);
        assert_eq!(r.get(1), None);
        // Average skips the gap entirely.
        assert_eq!(r.window_average(0.0, 3.0).unwrap(), 200.0);
        // A window covering only the gap is empty.
        assert_eq!(r.window_average(1.0, 2.0), Err(TelemetryError::EmptyWindow));
        // Energy counts the gap as zero power.
        assert_eq!(r.window_energy(0.0, 3.0).unwrap(), 400.0);
        // Fractional overlap with the gap discounts the weight.
        let avg = r.window_average(0.0, 1.5).unwrap();
        assert!((avg - 100.0).abs() < 1e-12, "{avg}");
    }

    #[test]
    fn degenerate_and_disjoint_windows_are_rejected() {
        let mut r = RingBuffer::new(0.0, 1.0, 4).unwrap();
        r.push(1.0);
        assert!(matches!(
            r.window_average(2.0, 2.0),
            Err(TelemetryError::InvalidConfig { .. })
        ));
        assert!(matches!(
            r.window_average(3.0, 2.0),
            Err(TelemetryError::InvalidConfig { .. })
        ));
        assert!(matches!(
            r.window_average(f64::NAN, 2.0),
            Err(TelemetryError::InvalidConfig { .. })
        ));
        assert_eq!(r.window_average(5.0, 9.0), Err(TelemetryError::EmptyWindow));
        let empty = RingBuffer::new(0.0, 1.0, 4).unwrap();
        assert_eq!(
            empty.window_average(0.0, 1.0),
            Err(TelemetryError::EmptyWindow)
        );
    }

    #[test]
    fn compensated_sums_survive_magnitude_spread() {
        // A huge constant offset plus tiny increments: naive summation
        // loses the increments; the compensated prefix keeps them.
        let mut r = RingBuffer::new(0.0, 1.0, 1024).unwrap();
        let base = 1.0e12;
        for k in 0..1000 {
            r.push(base + k as f64 * 1.0e-3);
        }
        let avg = r.window_average(0.0, 1000.0).unwrap();
        let want = base + 999.0 * 1.0e-3 / 2.0;
        assert!(
            (avg - want).abs() / want < 1e-15,
            "avg {avg} vs want {want}"
        );
    }
}

//! Online estimation with a sequential stopping rule.
//!
//! Table 5 of the paper answers "how many nodes must I meter?" *before*
//! the campaign, from an assumed coefficient of variation. A live
//! campaign can do better: re-evaluate the Eq. 1–2 confidence interval
//! (with the finite-population correction) after *every* accepted node
//! and stop the moment the half-width reaches the target λ. With the
//! planned CV and the large-sample z quantile the sequential rule stops
//! at exactly `SampleSizePlan::required_nodes` — the two are the same
//! inequality read in opposite directions — while the empirical-CV and
//! Student-t variants adapt to the fleet actually being measured.
//!
//! [`WindowedMean`] is the small per-node accumulator that turns a
//! sample-by-sample stream into the one number the estimator consumes:
//! the node's average power over the measurement window.

use crate::{Result, TelemetryError};
use power_stats::ci::{
    fpc_factor, mean_ci_t_finite, mean_ci_z_finite, sequential_relative_accuracy,
    ConfidenceInterval,
};
use power_stats::normal::z_critical;
use power_stats::student_t::t_critical;
use power_stats::summary::Summary;
use serde::{Deserialize, Serialize};

/// Which critical value the stopping rule uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CiQuantile {
    /// Eq. 1: Student-t with `n - 1` degrees of freedom. Honest at small
    /// `n`, needs at least two nodes before it can evaluate.
    StudentT,
    /// Eq. 2: large-sample Normal quantile. Matches the paper's Table 5
    /// arithmetic exactly.
    Normal,
}

/// Where the coefficient of variation in the half-width comes from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CvAssumption {
    /// Use a planned σ/μ (the paper's Table 5 columns). The rule is then
    /// deterministic in `n` and reproduces `required_nodes` exactly.
    Planned(f64),
    /// Use the running empirical σ̂/μ̂ of the fleet measured so far.
    Empirical,
}

/// A sequential stopping rule for a live measurement campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StoppingRule {
    /// Two-sided confidence level, e.g. `0.95`.
    pub confidence: f64,
    /// Target relative accuracy λ (half-width / mean), e.g. `0.01`.
    pub lambda: f64,
    /// Total machine size `N` (finite-population correction).
    pub population: u64,
    /// Critical-value family.
    pub quantile: CiQuantile,
    /// CV source.
    pub cv: CvAssumption,
    /// Never stop before this many nodes, regardless of the interval
    /// (guards the empirical CV against lucky early agreement).
    pub min_nodes: u64,
}

impl StoppingRule {
    /// Validates the rule.
    pub fn validate(&self) -> Result<()> {
        if !(self.confidence > 0.0 && self.confidence < 1.0) {
            return Err(TelemetryError::InvalidConfig {
                field: "confidence",
                reason: "confidence must lie strictly inside (0, 1)",
            });
        }
        if !(self.lambda > 0.0 && self.lambda.is_finite()) {
            return Err(TelemetryError::InvalidConfig {
                field: "lambda",
                reason: "target accuracy must be positive and finite",
            });
        }
        if self.population < 2 {
            return Err(TelemetryError::InvalidConfig {
                field: "population",
                reason: "population must hold at least two nodes",
            });
        }
        if let CvAssumption::Planned(cv) = self.cv {
            if !(cv > 0.0 && cv.is_finite()) {
                return Err(TelemetryError::InvalidConfig {
                    field: "cv",
                    reason: "planned coefficient of variation must be positive and finite",
                });
            }
        }
        Ok(())
    }
}

/// The estimator's verdict after one more node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Nodes accepted so far.
    pub n: u64,
    /// Current relative accuracy (half-width / mean), when computable —
    /// `None` while too few nodes have arrived to evaluate the rule.
    pub relative_accuracy: Option<f64>,
    /// Whether the rule says the campaign may stop.
    pub stop: bool,
}

/// Per-fleet Welford state driving a [`StoppingRule`].
#[derive(Debug, Clone)]
pub struct SequentialEstimator {
    rule: StoppingRule,
    fleet: Summary,
    stopped_at: Option<u64>,
}

impl SequentialEstimator {
    /// Creates an estimator for a validated rule.
    pub fn new(rule: StoppingRule) -> Result<Self> {
        rule.validate()?;
        Ok(SequentialEstimator {
            rule,
            fleet: Summary::new(),
            stopped_at: None,
        })
    }

    /// The rule in force.
    pub fn rule(&self) -> &StoppingRule {
        &self.rule
    }

    /// Nodes accepted so far.
    pub fn count(&self) -> u64 {
        self.fleet.count()
    }

    /// Running fleet mean in watts.
    pub fn mean(&self) -> f64 {
        self.fleet.mean()
    }

    /// The node count at which the rule first said stop, if it has.
    pub fn stopped_at(&self) -> Option<u64> {
        self.stopped_at
    }

    /// The fleet summary accumulated so far.
    pub fn summary(&self) -> &Summary {
        &self.fleet
    }

    /// Accepts one node's window-average power and re-evaluates the rule.
    pub fn push(&mut self, node_average_w: f64) -> Decision {
        self.fleet.push(node_average_w);
        let n = self.fleet.count();
        let rel = self.relative_accuracy().ok();
        // A census is exact by definition; the interval arithmetic above
        // agrees (fpc -> 0) whenever it is evaluable at all.
        let satisfied = rel.map(|r| r <= self.rule.lambda).unwrap_or(false);
        let stop = (satisfied && n >= self.rule.min_nodes) || n >= self.rule.population;
        if stop && self.stopped_at.is_none() {
            self.stopped_at = Some(n);
        }
        Decision {
            n,
            relative_accuracy: rel,
            stop,
        }
    }

    /// Current relative accuracy under the rule's quantile and CV
    /// assumption, when computable.
    pub fn relative_accuracy(&self) -> Result<f64> {
        let n = self.fleet.count();
        if n == 0 {
            return Err(TelemetryError::InvalidConfig {
                field: "n",
                reason: "no nodes accepted yet",
            });
        }
        match self.rule.cv {
            CvAssumption::Planned(cv) => {
                let crit = match self.rule.quantile {
                    CiQuantile::Normal => z_critical(self.rule.confidence)?,
                    CiQuantile::StudentT => {
                        if n < 2 {
                            return Err(TelemetryError::Stats(
                                power_stats::StatsError::InsufficientData { needed: 2, got: 1 },
                            ));
                        }
                        t_critical(self.rule.confidence, n as f64 - 1.0)?
                    }
                };
                let fpc = fpc_factor(self.rule.population, n)?;
                Ok(crit * cv / (n as f64).sqrt() * fpc)
            }
            CvAssumption::Empirical => Ok(sequential_relative_accuracy(
                &self.fleet,
                self.rule.confidence,
                self.rule.population,
                matches!(self.rule.quantile, CiQuantile::StudentT),
            )?),
        }
    }

    /// Confidence interval for the fleet mean under the rule's quantile,
    /// with the finite-population correction. Always uses the *empirical*
    /// spread — this is the accuracy statement the campaign reports,
    /// whatever CV assumption drove the stopping decision.
    pub fn ci(&self) -> Result<ConfidenceInterval> {
        Ok(match self.rule.quantile {
            CiQuantile::StudentT => {
                mean_ci_t_finite(&self.fleet, self.rule.confidence, self.rule.population)?
            }
            CiQuantile::Normal => {
                mean_ci_z_finite(&self.fleet, self.rule.confidence, self.rule.population)?
            }
        })
    }
}

/// Overlap-weighted running mean of a sample stream over one fixed
/// window `[from, to)` — the per-node reduction a live campaign performs
/// while samples are still arriving.
#[derive(Debug, Clone, Copy)]
pub struct WindowedMean {
    from: f64,
    to: f64,
    weighted: f64,
    weight: f64,
}

impl WindowedMean {
    /// Creates an accumulator for `[from, to)`.
    pub fn new(from: f64, to: f64) -> Result<Self> {
        if !(to > from) {
            return Err(TelemetryError::InvalidConfig {
                field: "to",
                reason: "window end must exceed window start",
            });
        }
        Ok(WindowedMean {
            from,
            to,
            weighted: 0.0,
            weight: 0.0,
        })
    }

    /// Folds in one sample covering `[t, t + dt)` at `watts`.
    pub fn observe(&mut self, t: f64, dt: f64, watts: f64) {
        let overlap = (self.to.min(t + dt) - self.from.max(t)).max(0.0);
        if overlap > 0.0 {
            self.weighted += watts * overlap;
            self.weight += overlap;
        }
    }

    /// Seconds of the window covered so far.
    pub fn coverage(&self) -> f64 {
        self.weight
    }

    /// The overlap-weighted average, if any overlap was observed.
    pub fn value(&self) -> Result<f64> {
        if !(self.weight > 0.0) {
            return Err(TelemetryError::EmptyWindow);
        }
        Ok(self.weighted / self.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use power_stats::rng::{seeded, StandardNormal};
    use power_stats::SampleSizePlan;
    use rand::Rng;

    fn rule(lambda: f64, cv: f64) -> StoppingRule {
        StoppingRule {
            confidence: 0.95,
            lambda,
            population: 10_000,
            quantile: CiQuantile::Normal,
            cv: CvAssumption::Planned(cv),
            min_nodes: 1,
        }
    }

    #[test]
    fn validation_rejects_bad_rules() {
        assert!(StoppingRule {
            confidence: 1.0,
            ..rule(0.01, 0.02)
        }
        .validate()
        .is_err());
        assert!(StoppingRule {
            lambda: 0.0,
            ..rule(0.01, 0.02)
        }
        .validate()
        .is_err());
        assert!(StoppingRule {
            population: 1,
            ..rule(0.01, 0.02)
        }
        .validate()
        .is_err());
        assert!(StoppingRule {
            cv: CvAssumption::Planned(-0.1),
            ..rule(0.01, 0.02)
        }
        .validate()
        .is_err());
        assert!(rule(0.01, 0.02).validate().is_ok());
    }

    #[test]
    fn planned_normal_rule_reproduces_required_nodes_exactly() {
        // The sequential inequality and the closed-form sample size are
        // the same formula; the stop must land on required_nodes for
        // every Table 5 cell.
        for &lambda in &[0.005, 0.01, 0.015, 0.02] {
            for &cv in &[0.02, 0.03, 0.05] {
                let plan = SampleSizePlan::new(0.95, lambda, cv).unwrap();
                let want = plan.required_nodes(10_000).unwrap();
                let mut est = SequentialEstimator::new(rule(lambda, cv)).unwrap();
                let mut stopped = None;
                for _ in 0..10_000u64 {
                    let d = est.push(400.0);
                    if d.stop {
                        stopped = Some(d.n);
                        break;
                    }
                }
                assert_eq!(stopped, Some(want), "lambda={lambda} cv={cv}");
                assert_eq!(est.stopped_at(), Some(want));
            }
        }
    }

    #[test]
    fn empirical_rule_stops_near_plan_when_cv_matches() {
        // Fleet with true cv = 3%: the empirical rule should stop within
        // a modest factor of the planned n (sampling noise moves it).
        let plan = SampleSizePlan::new(0.95, 0.01, 0.03).unwrap();
        let want = plan.required_nodes(10_000).unwrap();
        let mut est = SequentialEstimator::new(StoppingRule {
            cv: CvAssumption::Empirical,
            min_nodes: 8,
            ..rule(0.01, 0.03)
        })
        .unwrap();
        let mut rng = seeded(42);
        let mut gauss = StandardNormal::new();
        let mut stopped = None;
        for _ in 0..10_000u64 {
            let w = 400.0 * (1.0 + 0.03 * gauss.sample(&mut rng));
            let d = est.push(w);
            if d.stop {
                stopped = Some(d.n);
                break;
            }
        }
        let n = stopped.expect("must stop before census");
        assert!(
            n >= want / 3 && n <= want * 3,
            "stopped at {n}, plan said {want}"
        );
        // The reported CI honours the stop: empirical accuracy <= lambda.
        let ci = est.ci().unwrap();
        assert!(ci.relative_accuracy().unwrap() <= 0.0101);
    }

    #[test]
    fn student_t_is_more_conservative_than_normal_at_small_n() {
        let mk = |quantile| {
            SequentialEstimator::new(StoppingRule {
                quantile,
                ..rule(0.01, 0.02)
            })
            .unwrap()
        };
        let mut t = mk(CiQuantile::StudentT);
        let mut z = mk(CiQuantile::Normal);
        for _ in 0..5 {
            t.push(400.0);
            z.push(400.0);
        }
        let rt = t.relative_accuracy().unwrap();
        let rz = z.relative_accuracy().unwrap();
        assert!(rt > rz, "t {rt} must exceed z {rz} at n=5");
        // At one node the t rule cannot evaluate yet and must not stop.
        let mut t1 = mk(CiQuantile::StudentT);
        let d = t1.push(400.0);
        assert_eq!(d.relative_accuracy, None);
        assert!(!d.stop);
    }

    #[test]
    fn census_always_stops() {
        let mut est = SequentialEstimator::new(StoppingRule {
            population: 5,
            cv: CvAssumption::Empirical,
            min_nodes: 1,
            ..rule(1e-9, 0.02)
        })
        .unwrap();
        let mut rng = seeded(7);
        let mut last = Decision {
            n: 0,
            relative_accuracy: None,
            stop: false,
        };
        for _ in 0..5 {
            last = est.push(300.0 + rng.random::<f64>());
        }
        assert!(last.stop, "census of 5/5 must stop: {last:?}");
        assert_eq!(last.n, 5);
    }

    #[test]
    fn min_nodes_floor_is_honoured() {
        let mut est = SequentialEstimator::new(StoppingRule {
            min_nodes: 30,
            ..rule(0.02, 0.02)
        })
        .unwrap();
        // Planned rule would stop at n = 4 (Table 5); floor holds it to 30.
        let mut stopped = None;
        for _ in 0..100 {
            let d = est.push(400.0);
            if d.stop {
                stopped = Some(d.n);
                break;
            }
        }
        assert_eq!(stopped, Some(30));
    }

    #[test]
    fn windowed_mean_weights_overlap() {
        let mut m = WindowedMean::new(10.0, 20.0).unwrap();
        assert!(m.value().is_err());
        m.observe(0.0, 5.0, 999.0); // disjoint: ignored
        m.observe(8.0, 4.0, 100.0); // 2 s of overlap
        m.observe(12.0, 4.0, 300.0); // 4 s
        m.observe(18.0, 4.0, 500.0); // 2 s
        let v = m.value().unwrap();
        let want = (100.0 * 2.0 + 300.0 * 4.0 + 500.0 * 2.0) / 8.0;
        assert!((v - want).abs() < 1e-12, "{v} vs {want}");
        assert_eq!(m.coverage(), 8.0);
        assert!(WindowedMean::new(5.0, 5.0).is_err());
    }
}

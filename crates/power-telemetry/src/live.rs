//! Live measurement campaigns with sequential stopping.
//!
//! The batch pipeline picks `n` from Table 5, meters `n` nodes, and
//! reports. The live driver inverts that: it meters nodes *one at a
//! time* (a pilot batch first, then small increments), streams every
//! simulated step through a sampling meter into the ingestion layer, and
//! after each node's window average lands re-evaluates the sequential
//! stopping rule. The campaign ends the moment the Eq. 1–2 confidence
//! interval (with finite-population correction) reaches the target λ —
//! typically after exactly the Table 5 node count, but *measured*, not
//! assumed.
//!
//! Everything is deterministic: node selection, meter gains, meter
//! noise, the block-bounded arrival jitter that exercises the reordering
//! path, and fault injection all derive from `seed` via independent RNG
//! substreams, so a campaign is exactly reproducible sample-for-sample.
//!
//! # Durable campaigns
//!
//! That determinism is what makes a crashed campaign *resumable*: the
//! only state that matters at a node boundary is the sequence of
//! finalized per-node window averages fed to the estimator so far.
//! [`run_live_campaign_journaled`] appends each `(node, average)` to a
//! [`CampaignJournal`] (e.g. the write-ahead log in `power-archive`)
//! after it lands, and on startup replays the journal's durable prefix
//! into the estimator — the campaign continues metering at its
//! watermark, and the final report is identical to an uninterrupted
//! run's estimate (ingestion accounting and anomaly events cover only
//! the resumed portion, since the crashed process's samples are gone).

use crate::anomaly::{AnomalyEvent, AnomalyMonitor, DetectorConfig};
use crate::ingest::{BackpressurePolicy, Collector, IngestConfig, IngestStats, Sample};
use crate::online::{CiQuantile, CvAssumption, SequentialEstimator, StoppingRule};
use crate::{Result, TelemetryError};
use power_meter::faults::MeterFault;
use power_meter::MeterModel;
use power_sim::engine::MeterScope;
use power_sim::Simulator;
use power_stats::ci::ConfidenceInterval;
use power_stats::rng::{substream, StandardNormal};
use power_stats::sampling::sample_without_replacement;
use power_stats::SampleSizePlan;
use rand::Rng;

/// RNG substream tags (arbitrary, fixed for reproducibility).
const STREAM_SELECT: u64 = 0x11FE_CA3E_5E1E_C700;
const STREAM_METER: u64 = 0x11FE_CA3E_3E7E_D000;
const STREAM_JITTER: u64 = 0x11FE_CA3E_917E_4000;

/// Configuration of a live campaign.
#[derive(Debug, Clone)]
pub struct LiveCampaignConfig {
    /// Two-sided confidence level, e.g. `0.95`.
    pub confidence: f64,
    /// Target relative accuracy λ.
    pub lambda: f64,
    /// Critical-value family for the stopping rule and the reported CI.
    pub quantile: CiQuantile,
    /// CV source for the stopping rule.
    pub cv: CvAssumption,
    /// Instrument model every metered node gets an instance of.
    pub meter: MeterModel,
    /// Nodes metered before the rule is first consulted (≥ 2).
    pub pilot_nodes: usize,
    /// Nodes added per increment after the pilot.
    pub batch_nodes: usize,
    /// Hard cap on metered nodes (the campaign's meter budget).
    pub max_nodes: usize,
    /// Ingestion lateness bound; arrivals are jittered within blocks of
    /// this size to exercise the reordering path.
    pub lateness: u64,
    /// Per-node ring capacity; `0` sizes rings to retain the whole run.
    pub ring_capacity: usize,
    /// Producer→consumer channel bound.
    pub channel_capacity: usize,
    /// Producer threads feeding the ingestion channel.
    pub producers: usize,
    /// Root seed for selection, metering, jitter and faults.
    pub seed: u64,
    /// Which power boundary the meters see.
    pub scope: MeterScope,
    /// Streaming anomaly detection, if wanted.
    pub detector: Option<DetectorConfig>,
    /// Faults injected into specific nodes' meters (node id → fault).
    pub faults: Vec<(usize, MeterFault)>,
}

impl LiveCampaignConfig {
    /// A reasonable default campaign for target accuracy `lambda` with
    /// planned coefficient of variation `cv`.
    pub fn table5(lambda: f64, cv: f64, meter: MeterModel) -> Self {
        LiveCampaignConfig {
            confidence: 0.95,
            lambda,
            quantile: CiQuantile::Normal,
            cv: CvAssumption::Planned(cv),
            meter,
            pilot_nodes: 2,
            batch_nodes: 1,
            max_nodes: usize::MAX,
            lateness: 4,
            ring_capacity: 0,
            channel_capacity: 256,
            producers: 2,
            seed: 2015,
            scope: MeterScope::Wall,
            detector: None,
            faults: Vec::new(),
        }
    }

    fn validate(&self) -> Result<()> {
        if self.pilot_nodes < 2 {
            return Err(TelemetryError::InvalidConfig {
                field: "pilot_nodes",
                reason: "pilot needs at least two nodes for a spread estimate",
            });
        }
        if self.batch_nodes == 0 {
            return Err(TelemetryError::InvalidConfig {
                field: "batch_nodes",
                reason: "increment must add at least one node",
            });
        }
        if self.max_nodes < self.pilot_nodes {
            return Err(TelemetryError::InvalidConfig {
                field: "max_nodes",
                reason: "node budget must cover the pilot",
            });
        }
        if self.producers == 0 {
            return Err(TelemetryError::InvalidConfig {
                field: "producers",
                reason: "at least one producer thread is required",
            });
        }
        self.meter.validate()?;
        for (_, fault) in &self.faults {
            fault.validate()?;
        }
        Ok(())
    }

    /// The order in which a campaign over `population` nodes will meter
    /// the machine: a seeded draw without replacement, truncated to the
    /// node budget. Deterministic per (config, seed) — the same order
    /// [`run_live_campaign`] uses, so callers can know up front which
    /// node ids the pilot and the early batches will touch (e.g. to
    /// target fault injection at nodes that will actually be metered).
    pub fn selection_order(&self, population: usize) -> Result<Vec<usize>> {
        let budget = self.max_nodes.min(population);
        let mut select_rng = substream(self.seed ^ STREAM_SELECT, 0);
        let mut all = sample_without_replacement(&mut select_rng, population, population)?;
        all.truncate(budget);
        Ok(all)
    }
}

/// Fingerprints a campaign identity: everything that determines the
/// node selection order and the per-node averages — the full config
/// (via its `Debug` rendering, the workspace's standard trick for
/// structural hashing) and the machine size. A journal written under
/// one fingerprint refuses to replay into a campaign with another.
pub fn campaign_fingerprint(cfg: &LiveCampaignConfig, population: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut write = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    write(format!("{cfg:?}").as_bytes());
    write(&(population as u64).to_le_bytes());
    h
}

/// The durable prefix a [`CampaignJournal`] hands back on resume.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JournalReplay {
    /// `(node id, finalized window average)` in metering order.
    pub nodes: Vec<(usize, f64)>,
    /// Whether the journal recorded the stopping rule firing.
    pub stopped: bool,
}

/// Durable storage for a live campaign's progress.
///
/// The driver calls `resume` once at startup, then `record_node` after
/// every finalized per-node average and `record_stop` when the rule
/// fires. Implementations must make each record durable before
/// returning (or accept losing that node to re-metering — determinism
/// makes re-metering safe, never wrong).
pub trait CampaignJournal {
    /// Validate the journal against this campaign's identity and return
    /// the durable prefix. A fresh journal records the identity and
    /// returns an empty replay; a journal written by a *different*
    /// campaign must error rather than poison the estimator.
    fn resume(&mut self, fingerprint: u64, population: u64) -> Result<JournalReplay>;

    /// Append one finalized `(node, window average)` pair.
    fn record_node(&mut self, node: usize, average: f64) -> Result<()>;

    /// Record that the stopping rule fired.
    fn record_stop(&mut self) -> Result<()>;
}

/// What a finished live campaign reports.
#[derive(Debug, Clone)]
pub struct LiveCampaignReport {
    /// Machine size `N`.
    pub population: usize,
    /// Nodes actually metered (including journal-replayed ones).
    pub metered_nodes: u64,
    /// Nodes whose averages were replayed from a journal instead of
    /// metered in this process (a subset of `metered_nodes`).
    pub resumed_nodes: u64,
    /// Node count at which the stopping rule fired, if it did before the
    /// budget ran out.
    pub stopped_at: Option<u64>,
    /// Closed-form Eq. 5 node count for comparison (planned-CV rules).
    pub planned_nodes: Option<u64>,
    /// Fleet mean node power in watts.
    pub mean_node_w: f64,
    /// Confidence interval for the mean (empirical spread, FPC applied).
    pub ci: ConfidenceInterval,
    /// Achieved relative accuracy (half-width / mean).
    pub relative_accuracy: f64,
    /// Extrapolated machine power `N · mean` in watts.
    pub reported_power_w: f64,
    /// Measurement window `[from, to)` in run seconds.
    pub window: (f64, f64),
    /// Ingestion accounting across the whole campaign.
    pub ingest: IngestStats,
    /// Anomaly events, if a detector was configured.
    pub anomalies: Vec<AnomalyEvent>,
}

/// Jitters `samples` in place within consecutive blocks of `lateness`
/// entries (Fisher–Yates per block). Displacement is bounded by the
/// block, so ingestion with the same lateness bound repairs the order
/// losslessly — this exercises the reordering path without drops.
fn block_jitter<R: Rng + ?Sized>(samples: &mut [Sample], lateness: u64, rng: &mut R) {
    let block = lateness.max(1) as usize;
    if block < 2 {
        return;
    }
    for chunk in samples.chunks_mut(block) {
        for i in (1..chunk.len()).rev() {
            let j = rng.random_range(0..=i);
            chunk.swap(i, j);
        }
    }
}

/// Runs a live campaign against `sim`.
///
/// Nodes are drawn without replacement in a seeded random order. Each
/// batch streams the engine's per-step output through that node's meter
/// (and fault, if injected), jitters arrival order within the lateness
/// bound, pushes the samples through the multi-producer ingestion
/// pipeline, and hands finalized window averages to the sequential
/// estimator. The campaign stops at the rule's word, at a census of the
/// candidate budget, or at `max_nodes`.
pub fn run_live_campaign(
    sim: &Simulator<'_>,
    cfg: &LiveCampaignConfig,
) -> Result<LiveCampaignReport> {
    run_campaign(sim, cfg, None)
}

/// Runs a live campaign with durable progress: like
/// [`run_live_campaign`], but every finalized per-node average is
/// appended to `journal` and, if the journal already holds a prefix of
/// this campaign (same [`campaign_fingerprint`]), the campaign resumes
/// at its watermark instead of re-metering the recorded nodes. See the
/// module docs for the exact resume semantics.
pub fn run_live_campaign_journaled(
    sim: &Simulator<'_>,
    cfg: &LiveCampaignConfig,
    journal: &mut dyn CampaignJournal,
) -> Result<LiveCampaignReport> {
    run_campaign(sim, cfg, Some(journal))
}

fn run_campaign(
    sim: &Simulator<'_>,
    cfg: &LiveCampaignConfig,
    mut journal: Option<&mut dyn CampaignJournal>,
) -> Result<LiveCampaignReport> {
    cfg.validate()?;
    let population = sim.cluster().len();
    let phases = sim.workload().phases();
    let window = (phases.core_start(), phases.core_end());
    let dt = sim.dt();
    let steps = sim.run_steps();
    let ring_capacity = if cfg.ring_capacity == 0 {
        steps + 1
    } else {
        cfg.ring_capacity
    };

    let rule = StoppingRule {
        confidence: cfg.confidence,
        lambda: cfg.lambda,
        population: population as u64,
        quantile: cfg.quantile,
        cv: cfg.cv,
        min_nodes: cfg.pilot_nodes as u64,
    };
    let mut estimator = SequentialEstimator::new(rule)?;
    let planned_nodes = match cfg.cv {
        CvAssumption::Planned(cv) => Some(
            SampleSizePlan::new(cfg.confidence, cfg.lambda, cv)?
                .required_nodes(population as u64)?,
        ),
        CvAssumption::Empirical => None,
    };

    // Candidate order: seeded draw without replacement over the machine.
    let candidates = cfg.selection_order(population)?;

    let ingest_cfg = IngestConfig {
        lateness: cfg.lateness,
        ring_capacity,
        channel_capacity: cfg.channel_capacity,
        backpressure: BackpressurePolicy::Block,
    };
    let mut collector = Collector::new(candidates.len(), 0.0, dt, &ingest_cfg)?;
    let mut monitor = match cfg.detector {
        Some(det) => Some(AnomalyMonitor::new(candidates.len(), 0.0, dt, det)?),
        None => None,
    };

    let mut next_slot = 0usize;
    let mut stopped = false;

    // Replay the journal's durable prefix into the estimator: those
    // nodes were metered by a previous incarnation of this campaign,
    // and determinism guarantees re-metering them would reproduce the
    // recorded averages exactly.
    let mut resumed_nodes = 0u64;
    if let Some(journal) = journal.as_deref_mut() {
        let replay = journal.resume(campaign_fingerprint(cfg, population), population as u64)?;
        if replay.nodes.len() > candidates.len() {
            return Err(TelemetryError::Journal(format!(
                "journal holds {} nodes but the campaign can meter at most {}",
                replay.nodes.len(),
                candidates.len()
            )));
        }
        for (slot, &(node, average)) in replay.nodes.iter().enumerate() {
            if candidates[slot] != node {
                return Err(TelemetryError::Journal(format!(
                    "journal node {node} at position {slot} does not match the \
                     campaign's deterministic selection order (expected {})",
                    candidates[slot]
                )));
            }
            let decision = estimator.push(average);
            resumed_nodes += 1;
            if decision.stop {
                stopped = true;
                break;
            }
        }
        next_slot = resumed_nodes as usize;
        if replay.stopped {
            stopped = true;
        }
    }

    while next_slot < candidates.len() && !stopped {
        let batch_len = if next_slot < cfg.pilot_nodes {
            (cfg.pilot_nodes - next_slot).min(candidates.len() - next_slot)
        } else {
            cfg.batch_nodes.min(candidates.len() - next_slot)
        };
        let slots: Vec<usize> = (next_slot..next_slot + batch_len).collect();
        let nodes: Vec<usize> = slots.iter().map(|&s| candidates[s]).collect();

        // Stream the engine's output through each node's meter into
        // per-node sample lists (seq = simulation step).
        let mut metered: Vec<Vec<Sample>> = vec![Vec::with_capacity(steps); batch_len];
        let mut meters = Vec::with_capacity(batch_len);
        for &node in &nodes {
            let mut rng = substream(cfg.seed ^ STREAM_METER, node as u64);
            let meter = cfg.meter.instantiate(&mut rng)?;
            let fault = cfg
                .faults
                .iter()
                .find(|(n, _)| *n == node)
                .map(|(_, f)| *f)
                .unwrap_or(MeterFault::None);
            meters.push((meter, fault, rng, StandardNormal::new(), None::<f64>));
        }
        let mut emit_err = None;
        sim.stream_subset(&nodes, |s| {
            let slot_in_batch = match nodes.iter().position(|&n| n == s.node) {
                Some(p) => p,
                None => {
                    emit_err = Some(TelemetryError::InvalidConfig {
                        field: "node",
                        reason: "engine emitted a sample for an unrequested node",
                    });
                    return;
                }
            };
            let (meter, fault, rng, gauss, last_good) = &mut meters[slot_in_batch];
            let w = meter.sample_one_with(gauss, rng, s.power(cfg.scope));
            // Fault layer, same draw order as `FaultyMeter::measure`;
            // t_rel is measured from the window start, before which the
            // stuck fault has nothing to freeze onto.
            if let Some(faulted) = fault.apply_sample(rng, w, s.t - window.0, last_good) {
                metered[slot_in_batch].push(Sample {
                    node: slots[slot_in_batch],
                    seq: s.step as u64,
                    watts: faulted,
                });
            }
        })?;
        if let Some(e) = emit_err {
            return Err(e);
        }

        // Bounded arrival jitter, then fan the batch out over producer
        // threads — whole nodes per producer so per-node displacement
        // stays within the lateness bound.
        for (slot_in_batch, samples) in metered.iter_mut().enumerate() {
            let mut rng = substream(cfg.seed ^ STREAM_JITTER, nodes[slot_in_batch] as u64);
            block_jitter(samples, cfg.lateness, &mut rng);
        }
        let mut sources: Vec<Vec<Sample>> = vec![Vec::new(); cfg.producers.min(batch_len)];
        for (slot_in_batch, samples) in metered.into_iter().enumerate() {
            let p = slot_in_batch % sources.len();
            sources[p].extend(samples);
        }
        crate::ingest::run_pipeline(
            &mut collector,
            &sources,
            cfg.channel_capacity,
            BackpressurePolicy::Block,
        )?;
        collector.flush();

        // Finalized rings: replay into the detectors, reduce to window
        // averages, and consult the stopping rule node by node.
        for &slot in &slots {
            let ring = collector.ring(slot).ok_or(TelemetryError::InvalidConfig {
                field: "slot",
                reason: "collector lost a node slot",
            })?;
            if let Some(mon) = monitor.as_mut() {
                for seq in ring.first_seq()..ring.next_seq() {
                    match ring.get(seq) {
                        Some(w) => mon.observe(slot, w)?,
                        None => mon.observe_missing(slot)?,
                    }
                }
            }
            let avg = ring
                .window_average(window.0, window.1)
                .map_err(|e| match e {
                    // An all-dropped node is a campaign-level failure the
                    // operator should see named.
                    TelemetryError::EmptyWindow => TelemetryError::InvalidConfig {
                        field: "node",
                        reason: "a metered node delivered no usable window samples",
                    },
                    other => other,
                })?;
            let decision = estimator.push(avg);
            if let Some(journal) = journal.as_deref_mut() {
                journal.record_node(candidates[slot], avg)?;
            }
            if decision.stop {
                if let Some(journal) = journal.as_deref_mut() {
                    journal.record_stop()?;
                }
                stopped = true;
                break;
            }
        }
        next_slot += batch_len;
    }

    let ci = estimator.ci()?;
    let relative_accuracy = ci.relative_accuracy()?;
    let mean_node_w = estimator.mean();
    Ok(LiveCampaignReport {
        population,
        metered_nodes: estimator.count(),
        resumed_nodes,
        stopped_at: estimator.stopped_at(),
        planned_nodes,
        mean_node_w,
        ci,
        relative_accuracy,
        reported_power_w: mean_node_w * population as f64,
        window,
        ingest: collector.stats(),
        anomalies: monitor.map(|m| m.events().to_vec()).unwrap_or_default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use power_sim::cluster::{Cluster, ClusterSpec};
    use power_sim::components::{MemorySpec, ProcessorSpec, StaticSpec};
    use power_sim::dvfs::{Governor, PState};
    use power_sim::engine::SimulationConfig;
    use power_sim::fan::{FanPolicy, FanSpec};
    use power_sim::thermal::ThermalSpec;
    use power_sim::variability::VariabilityModel;
    use power_sim::vid::VoltagePolicy;
    use power_sim::NodeSpec;
    use power_workload::{Firestarter, LoadBalance, RunPhases};

    fn spec(nodes: usize) -> ClusterSpec {
        ClusterSpec {
            name: "live-test".into(),
            total_nodes: nodes,
            node: NodeSpec {
                processors: vec![
                    ProcessorSpec {
                        dynamic_w: 95.0,
                        leakage_w: 20.0,
                        idle_fraction: 0.12,
                        f_nom_mhz: 2700.0,
                        v_nom: 1.0,
                        leakage_temp_coeff: 0.008,
                        t_ref_c: 60.0,
                    };
                    2
                ],
                memory: MemorySpec {
                    idle_w: 15.0,
                    active_w: 25.0,
                },
                static_power: StaticSpec { watts: 40.0 },
                fan: FanSpec {
                    max_power_w: 60.0,
                    min_speed: 0.3,
                },
                thermal: ThermalSpec {
                    t_ambient_c: 25.0,
                    r_th_max: 0.10,
                    r_th_min: 0.04,
                    tau_s: 120.0,
                },
                psu_efficiency: 0.92,
            },
            variability: VariabilityModel {
                leakage_sigma: 0.12,
                node_sigma: 0.015,
                vid_bins: 6,
                vid_leakage_corr: 0.7,
            },
            governor: Governor::Static(PState {
                f_mhz: 2700.0,
                voltage: VoltagePolicy::Fixed(1.0),
            }),
            fan_policy: FanPolicy::Pinned { speed: 0.5 },
            ambient_gradient_c: 0.0,
            seed: 99,
        }
    }

    fn config() -> SimulationConfig {
        SimulationConfig {
            dt: 5.0,
            noise_sigma: 0.01,
            common_noise_sigma: 0.003,
            seed: 7,
            threads: 2,
        }
    }

    fn campaign(cv: CvAssumption) -> LiveCampaignConfig {
        LiveCampaignConfig {
            cv,
            lambda: 0.02,
            ..LiveCampaignConfig::table5(0.02, 0.03, MeterModel::ideal())
        }
    }

    #[test]
    fn campaign_stops_and_meets_lambda() {
        let cluster = Cluster::build(spec(120)).unwrap();
        let phases = RunPhases::new(60.0, 600.0, 60.0).unwrap();
        let wl = Firestarter::new(phases);
        let sim = Simulator::new(&cluster, &wl, LoadBalance::Balanced, config()).unwrap();
        let cfg = campaign(CvAssumption::Empirical);
        let report = run_live_campaign(&sim, &cfg).unwrap();
        let n = report.stopped_at.expect("rule must fire on 120 nodes");
        assert_eq!(report.metered_nodes, n);
        assert!((2..120).contains(&n), "stopped at {n}");
        assert!(
            report.relative_accuracy <= cfg.lambda + 1e-12,
            "achieved {} > {}",
            report.relative_accuracy,
            cfg.lambda
        );
        // Block backpressure + in-bound jitter: lossless ingestion.
        assert_eq!(report.ingest.dropped(), 0);
        assert_eq!(report.ingest.gaps, 0);
        assert!(report.ingest.reordered > 0, "jitter never exercised");
        // Sanity on the extrapolated machine power (~300-450 W/node).
        let per_node = report.reported_power_w / 120.0;
        assert!((250.0..500.0).contains(&per_node), "{per_node}");
        assert!(report.anomalies.is_empty());
    }

    #[test]
    fn campaign_is_deterministic() {
        let cluster = Cluster::build(spec(60)).unwrap();
        let phases = RunPhases::new(30.0, 300.0, 30.0).unwrap();
        let wl = Firestarter::new(phases);
        let sim = Simulator::new(&cluster, &wl, LoadBalance::Balanced, config()).unwrap();
        let cfg = campaign(CvAssumption::Empirical);
        let a = run_live_campaign(&sim, &cfg).unwrap();
        let b = run_live_campaign(&sim, &cfg).unwrap();
        assert_eq!(a.metered_nodes, b.metered_nodes);
        assert_eq!(a.mean_node_w, b.mean_node_w);
        assert_eq!(a.relative_accuracy, b.relative_accuracy);
        assert_eq!(a.ingest, b.ingest);
    }

    #[test]
    fn node_budget_caps_the_campaign() {
        let cluster = Cluster::build(spec(60)).unwrap();
        let phases = RunPhases::new(30.0, 300.0, 30.0).unwrap();
        let wl = Firestarter::new(phases);
        let sim = Simulator::new(&cluster, &wl, LoadBalance::Balanced, config()).unwrap();
        let mut cfg = campaign(CvAssumption::Empirical);
        cfg.lambda = 1e-6; // unreachable target
        cfg.max_nodes = 10;
        let report = run_live_campaign(&sim, &cfg).unwrap();
        assert_eq!(report.metered_nodes, 10);
        assert_eq!(report.stopped_at, None);
        assert!(report.relative_accuracy > 1e-6);
    }

    #[test]
    fn injected_faults_surface_as_anomalies() {
        let cluster = Cluster::build(spec(40)).unwrap();
        let phases = RunPhases::new(30.0, 600.0, 30.0).unwrap();
        let wl = Firestarter::new(phases);
        let sim = Simulator::new(&cluster, &wl, LoadBalance::Balanced, config()).unwrap();
        let mut cfg = campaign(CvAssumption::Empirical);
        cfg.lambda = 1e-6; // force a metering sweep of the whole budget
        cfg.max_nodes = 40;
        cfg.detector = Some(DetectorConfig {
            drift_window: 24,
            drift_threshold_per_hour: 0.5,
            stuck_run: 10,
            stuck_tolerance_w: 0.0,
            gap_threshold: 5,
        });
        // Freeze every meter early: with dt = 5 s each node emits long
        // runs of its stuck value — unambiguous for the run-length
        // detector even at this coarse step.
        cfg.faults = (0..40)
            .map(|n| (n, MeterFault::StuckAfter { after_s: 100.0 }))
            .collect();
        let report = run_live_campaign(&sim, &cfg).unwrap();
        let stuck = report
            .anomalies
            .iter()
            .filter(|e| matches!(e.kind, crate::anomaly::AnomalyKind::Stuck { .. }))
            .count();
        assert!(stuck >= 30, "stuck events: {stuck} of 40 nodes");
    }

    #[test]
    fn config_validation() {
        let ok = campaign(CvAssumption::Empirical);
        assert!(ok.validate().is_ok());
        let mut bad = ok.clone();
        bad.pilot_nodes = 1;
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.batch_nodes = 0;
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.max_nodes = 1;
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.producers = 0;
        assert!(bad.validate().is_err());
        let mut bad = ok;
        bad.faults = vec![(0, MeterFault::DropSamples { prob: 2.0 })];
        assert!(bad.validate().is_err());
    }

    /// In-memory journal that can simulate a crash by erroring after
    /// `fail_after` durable records (the record itself still lands, as
    /// with a real WAL that fsyncs then dies).
    #[derive(Default)]
    struct MockJournal {
        identity: Option<(u64, u64)>,
        nodes: Vec<(usize, f64)>,
        stopped: bool,
        fail_after: Option<usize>,
    }

    impl CampaignJournal for MockJournal {
        fn resume(&mut self, fingerprint: u64, population: u64) -> Result<JournalReplay> {
            match self.identity {
                None => {
                    self.identity = Some((fingerprint, population));
                    Ok(JournalReplay::default())
                }
                Some(id) if id == (fingerprint, population) => Ok(JournalReplay {
                    nodes: self.nodes.clone(),
                    stopped: self.stopped,
                }),
                Some(_) => Err(TelemetryError::Journal("foreign journal".into())),
            }
        }

        fn record_node(&mut self, node: usize, average: f64) -> Result<()> {
            self.nodes.push((node, average));
            if self
                .fail_after
                .is_some_and(|limit| self.nodes.len() >= limit)
            {
                return Err(TelemetryError::Journal("injected crash".into()));
            }
            Ok(())
        }

        fn record_stop(&mut self) -> Result<()> {
            self.stopped = true;
            Ok(())
        }
    }

    #[test]
    fn journaled_campaign_matches_plain_run() {
        let cluster = Cluster::build(spec(60)).unwrap();
        let phases = RunPhases::new(30.0, 300.0, 30.0).unwrap();
        let wl = Firestarter::new(phases);
        let sim = Simulator::new(&cluster, &wl, LoadBalance::Balanced, config()).unwrap();
        let cfg = campaign(CvAssumption::Empirical);
        let plain = run_live_campaign(&sim, &cfg).unwrap();
        let mut journal = MockJournal::default();
        let journaled = run_live_campaign_journaled(&sim, &cfg, &mut journal).unwrap();
        assert_eq!(journaled.resumed_nodes, 0);
        assert_eq!(journaled.metered_nodes, plain.metered_nodes);
        assert_eq!(journaled.mean_node_w, plain.mean_node_w);
        assert_eq!(journaled.relative_accuracy, plain.relative_accuracy);
        assert_eq!(journal.nodes.len() as u64, plain.metered_nodes);
        assert_eq!(journal.stopped, plain.stopped_at.is_some());
    }

    #[test]
    fn interrupted_campaign_resumes_and_matches() {
        let cluster = Cluster::build(spec(60)).unwrap();
        let phases = RunPhases::new(30.0, 300.0, 30.0).unwrap();
        let wl = Firestarter::new(phases);
        let sim = Simulator::new(&cluster, &wl, LoadBalance::Balanced, config()).unwrap();
        let mut cfg = campaign(CvAssumption::Empirical);
        cfg.lambda = 1e-6; // unreachable: meter the whole 12-node budget
        cfg.max_nodes = 12;
        let baseline = run_live_campaign(&sim, &cfg).unwrap();
        assert!(baseline.metered_nodes > 4, "need room to interrupt");

        // "Crash" after 4 nodes have been made durable.
        let mut journal = MockJournal {
            fail_after: Some(4),
            ..MockJournal::default()
        };
        let err = run_live_campaign_journaled(&sim, &cfg, &mut journal).unwrap_err();
        assert!(matches!(err, TelemetryError::Journal(_)), "{err}");
        assert_eq!(journal.nodes.len(), 4);

        // Resume from the durable prefix: the report is identical to an
        // uninterrupted run's.
        journal.fail_after = None;
        let resumed = run_live_campaign_journaled(&sim, &cfg, &mut journal).unwrap();
        assert_eq!(resumed.resumed_nodes, 4);
        assert_eq!(resumed.metered_nodes, baseline.metered_nodes);
        assert_eq!(resumed.stopped_at, baseline.stopped_at);
        assert_eq!(resumed.mean_node_w, baseline.mean_node_w);
        assert_eq!(resumed.relative_accuracy, baseline.relative_accuracy);
    }

    #[test]
    fn journal_mismatches_are_rejected() {
        let cluster = Cluster::build(spec(60)).unwrap();
        let phases = RunPhases::new(30.0, 300.0, 30.0).unwrap();
        let wl = Firestarter::new(phases);
        let sim = Simulator::new(&cluster, &wl, LoadBalance::Balanced, config()).unwrap();
        let cfg = campaign(CvAssumption::Empirical);

        // A journal written under a different campaign config.
        let mut foreign = MockJournal::default();
        let other = campaign(CvAssumption::Planned(0.10));
        foreign.identity = Some((campaign_fingerprint(&other, 60), 60));
        let err = run_live_campaign_journaled(&sim, &cfg, &mut foreign).unwrap_err();
        assert!(matches!(err, TelemetryError::Journal(_)), "{err}");

        // A journal whose node order disagrees with the deterministic
        // selection order.
        let mut run_first = MockJournal::default();
        run_live_campaign_journaled(&sim, &cfg, &mut run_first).unwrap();
        let mut tampered = MockJournal {
            identity: run_first.identity,
            nodes: run_first.nodes.clone(),
            stopped: run_first.stopped,
            fail_after: None,
        };
        tampered.nodes.swap(0, 1);
        let err = run_live_campaign_journaled(&sim, &cfg, &mut tampered).unwrap_err();
        assert!(matches!(err, TelemetryError::Journal(_)), "{err}");
    }
}

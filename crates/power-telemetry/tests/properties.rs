//! Property-based tests: the streaming path must agree with the batch
//! trace machinery whatever the sample values, arrival order, lateness
//! bound or window placement.

use proptest::prelude::*;

use power_sim::SystemTrace;
use power_telemetry::ingest::{BackpressurePolicy, Collector, IngestConfig, Sample};
use power_telemetry::ring::RingBuffer;
use power_telemetry::TelemetryError;
use rand::{Rng, SeedableRng};

/// Deterministic in-place jitter within blocks of `lateness` samples —
/// the maximum disorder the ingestion watermark repairs losslessly.
fn block_jitter(samples: &mut [Sample], lateness: u64, seed: u64) {
    let block = lateness.max(1) as usize;
    if block < 2 {
        return;
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for chunk in samples.chunks_mut(block) {
        for i in (1..chunk.len()).rev() {
            let j = rng.random_range(0..=i);
            chunk.swap(i, j);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Ring sliding-window averages agree with `SystemTrace::window_average`
    /// within 1e-9 relative, for random series, origins, sample intervals
    /// and window placements, including windows clipped at either edge.
    #[test]
    fn ring_agrees_with_trace_window_average(
        values in prop::collection::vec(5.0..2000.0f64, 2..200),
        t0 in -50.0..50.0f64,
        dt in 0.05..20.0f64,
        a in 0.0..1.0f64,
        b in 0.0..1.0f64,
        overhang in prop::bool::ANY,
    ) {
        let n = values.len();
        let trace = SystemTrace::new(t0, dt, values.clone()).unwrap();
        let mut ring = RingBuffer::new(t0, dt, n).unwrap();
        for &v in &values {
            ring.push(v);
        }
        let t_end = t0 + n as f64 * dt;
        // Random window inside the trace, optionally pushed past the
        // edges so clipping is exercised on both sides.
        let (mut from, mut to) = if a < b {
            (t0 + a * (t_end - t0), t0 + b * (t_end - t0))
        } else {
            (t0 + b * (t_end - t0), t0 + a * (t_end - t0))
        };
        if overhang {
            from -= 2.0 * dt;
            to += 2.0 * dt;
        }
        prop_assume!(to - from > 1e-9 * dt);
        let want = trace.window_average(from, to).unwrap();
        let got = ring.window_average(from, to).unwrap();
        prop_assert!(
            (got - want).abs() <= 1e-9 * want.abs().max(1.0),
            "ring {got} vs trace {want} over [{from}, {to})"
        );
        // Energy agrees with average x clipped duration.
        let lo = from.max(t0);
        let hi = to.min(t_end);
        let e = ring.window_energy(from, to).unwrap();
        prop_assert!(
            (e - want * (hi - lo)).abs() <= 1e-6 * e.abs().max(1.0),
            "energy {e} vs {}", want * (hi - lo)
        );
    }

    /// Ingesting a block-jittered stream under a sufficient lateness
    /// bound is lossless: the ring holds the true-order series and every
    /// window average matches the batch trace.
    #[test]
    fn jittered_ingestion_is_lossless_and_matches_trace(
        values in prop::collection::vec(5.0..2000.0f64, 4..160),
        lateness in 0u64..12,
        jitter_seed in 0u64..1000,
        a in 0.0..1.0f64,
        b in 0.0..1.0f64,
    ) {
        let n = values.len();
        let dt = 1.0;
        let trace = SystemTrace::new(0.0, dt, values.clone()).unwrap();
        let mut samples: Vec<Sample> = values
            .iter()
            .enumerate()
            .map(|(k, &v)| Sample { node: 0, seq: k as u64, watts: v })
            .collect();
        block_jitter(&mut samples, lateness, jitter_seed);
        let cfg = IngestConfig {
            lateness,
            ring_capacity: n + lateness as usize + 2,
            channel_capacity: 64,
            backpressure: BackpressurePolicy::Block,
        };
        let mut c = Collector::new(1, 0.0, dt, &cfg).unwrap();
        for s in samples {
            c.ingest(s).unwrap();
        }
        c.flush();
        let stats = c.stats();
        prop_assert_eq!(stats.accepted, n as u64);
        prop_assert_eq!(stats.dropped(), 0);
        prop_assert_eq!(stats.gaps, 0);
        let ring = c.ring(0).unwrap();
        for (k, &v) in values.iter().enumerate() {
            prop_assert_eq!(ring.get(k as u64), Some(v));
        }
        let (from, to) = if a < b {
            (a * n as f64, b * n as f64)
        } else {
            (b * n as f64, a * n as f64)
        };
        prop_assume!(to - from > 1e-9);
        let want = trace.window_average(from, to).unwrap();
        let got = ring.window_average(from, to).unwrap();
        prop_assert!(
            (got - want).abs() <= 1e-9 * want.abs().max(1.0),
            "ring {got} vs trace {want}"
        );
    }

    /// Once the ring evicts, queries clamp to the retained horizon and
    /// agree with the batch average over exactly that suffix.
    #[test]
    fn evicted_ring_matches_trace_over_retained_suffix(
        values in prop::collection::vec(5.0..2000.0f64, 20..120),
        capacity in 4usize..16,
    ) {
        let n = values.len();
        prop_assume!(capacity < n);
        let trace = SystemTrace::new(0.0, 1.0, values.clone()).unwrap();
        let mut ring = RingBuffer::new(0.0, 1.0, capacity).unwrap();
        for &v in &values {
            ring.push(v);
        }
        let start = (n - capacity) as f64;
        // A query over the whole stream silently clamps to the suffix.
        let want = trace.window_average(start, n as f64).unwrap();
        let got = ring.window_average(0.0, n as f64).unwrap();
        prop_assert!((got - want).abs() <= 1e-9 * want.abs().max(1.0));
        // A query entirely inside the evicted prefix names the horizon.
        prop_assert_eq!(
            ring.window_average(0.0, start - 1.0),
            Err(TelemetryError::Evicted { oldest_retained: (n - capacity) as u64 })
        );
    }
}

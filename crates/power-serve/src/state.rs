//! Shared server state: configuration, system catalog, trace store,
//! metrics.
//!
//! One [`ServeState`] is shared (via `Arc`) by every worker thread. All
//! interior mutability lives in the [`TraceStore`] and [`Metrics`] — the
//! catalog and configuration are immutable after construction, so
//! handlers never contend except on the caches they are supposed to
//! share.
//!
//! With [`ServeConfig::store_dir`] set, the trace store gains a disk
//! tier: a crash-safe `power-archive` store that survives restarts, so a
//! sweep computed by one server process is served from disk — not
//! recomputed — by the next.

use crate::metrics::Metrics;
use power_archive::{Archive, FleetWal, ProductsArchive};
use power_fleet::{Fleet, FleetConfig};
use power_sim::store::{ArchiveTier, TraceStore};
use power_sim::systems::SystemPreset;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Resource and simulation-shape limits for the service.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// LRU cap on cached sweeps (entries). `None` disables the bound.
    pub store_capacity: Option<usize>,
    /// Largest machine a single request may simulate. Requests naming a
    /// preset larger than this must scale it down via `nodes`.
    pub max_nodes: usize,
    /// Cap on `nodes * samples` for one sweep, bounding per-request
    /// memory and CPU.
    pub max_cells: u64,
    /// Worker threads each simulation sweep may use. Kept small by
    /// default — request-level parallelism comes from the server's worker
    /// pool, not from each sweep fanning out.
    pub sim_threads: usize,
    /// Per-node relative noise sigma for served simulations.
    pub noise_sigma: f64,
    /// Machine-wide relative noise sigma for served simulations.
    pub common_noise_sigma: f64,
    /// Directory for the on-disk sweep archive. `None` keeps the store
    /// memory-only (sweeps die with the process).
    pub store_dir: Option<PathBuf>,
    /// Pre-populate the memory tier from the archive at startup instead
    /// of faulting sweeps in lazily on first request.
    pub warm_on_start: bool,
    /// Ingest-plane shards for the campaign fleet.
    pub fleet_shards: usize,
    /// Cap on concurrently-registered fleet campaigns.
    pub max_campaigns: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            store_capacity: Some(256),
            max_nodes: 4096,
            max_cells: 16_000_000,
            sim_threads: 2,
            noise_sigma: 0.01,
            common_noise_sigma: 0.004,
            store_dir: None,
            warm_on_start: true,
            fleet_shards: 16,
            max_campaigns: 10_000,
        }
    }
}

/// Immutable-after-construction state shared by all workers.
pub struct ServeState {
    /// Service limits.
    pub config: ServeConfig,
    /// Every queryable system preset.
    pub catalog: Vec<SystemPreset>,
    /// The sweep cache all simulation-backed endpoints share.
    pub store: TraceStore,
    /// The disk tier beneath [`ServeState::store`], when configured.
    pub archive: Option<Arc<ProductsArchive>>,
    /// Sweeps loaded from the archive into the memory tier at startup.
    pub warmed: usize,
    /// The campaign fleet behind `/v1/campaigns` and `/v1/leaderboard`.
    /// With a store directory, it is journalled to `<dir>/fleet.wal` and
    /// resumes every in-flight campaign at its watermark on restart.
    pub fleet: Arc<Fleet>,
    /// Request metrics.
    pub metrics: Metrics,
    /// Server start time, for `/healthz` uptime.
    pub started: Instant,
}

impl ServeState {
    /// Builds the state: the full preset catalog (the four Figure 1 /
    /// Table 2 trace systems plus the six Table 3/4 variability systems)
    /// and a trace store bounded per `config`. With
    /// [`ServeConfig::store_dir`] set, opens (or creates) the on-disk
    /// archive there — recovering from any interrupted writes — and
    /// attaches it as the store's disk tier.
    pub fn try_new(config: ServeConfig) -> io::Result<Self> {
        let mut catalog = SystemPreset::trace_presets();
        catalog.extend(SystemPreset::variability_presets());
        let mut store = match config.store_capacity {
            Some(cap) => TraceStore::bounded(cap),
            None => TraceStore::new(),
        };
        let mut archive = None;
        let mut warmed = 0;
        let fleet_cfg = FleetConfig {
            shards: config.fleet_shards,
            max_campaigns: config.max_campaigns,
        };
        let fleet;
        if let Some(dir) = &config.store_dir {
            let products = Arc::new(ProductsArchive::new(Archive::open(dir)?));
            store = store.with_archive(Arc::clone(&products) as Arc<dyn ArchiveTier>);
            if config.warm_on_start {
                warmed = store.warm_from_archive();
            }
            archive = Some(products);
            // The fleet journal shares the archive directory; the
            // archive only claims MANIFEST.log and *.seg names, so the
            // WAL rides alongside without interfering with recovery.
            let wal = FleetWal::open(dir.join("fleet.wal"))?;
            fleet = Fleet::open(fleet_cfg, Box::new(wal))
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        } else {
            fleet = Fleet::new(fleet_cfg)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        }
        Ok(ServeState {
            config,
            catalog,
            store,
            archive,
            warmed,
            fleet: Arc::new(fleet),
            metrics: Metrics::new(),
            started: Instant::now(),
        })
    }

    /// [`ServeState::try_new`] for configurations without a disk tier,
    /// which cannot fail. Panics if `store_dir` is set and unopenable —
    /// callers wiring an archive should use `try_new`.
    pub fn new(config: ServeConfig) -> Self {
        ServeState::try_new(config).expect("archive store failed to open")
    }

    /// Looks up a preset by name (ASCII case-insensitive).
    pub fn preset(&self, name: &str) -> Option<&SystemPreset> {
        self.catalog
            .iter()
            .find(|p| p.name.eq_ignore_ascii_case(name))
    }
}

impl Default for ServeState {
    fn default() -> Self {
        ServeState::new(ServeConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_holds_all_ten_paper_systems() {
        let state = ServeState::default();
        assert_eq!(state.catalog.len(), 10);
        assert!(state.preset("L-CSC").is_some());
        assert!(state.preset("l-csc").is_some(), "lookup ignores case");
        assert!(state.preset("Titan").is_some());
        assert!(state.preset("HAL 9000").is_none());
    }

    #[test]
    fn store_capacity_follows_config() {
        let state = ServeState::default();
        assert_eq!(state.store.capacity(), Some(256));
        let unbounded = ServeState::new(ServeConfig {
            store_capacity: None,
            ..ServeConfig::default()
        });
        assert_eq!(unbounded.store.capacity(), None);
    }

    #[test]
    fn store_dir_attaches_the_disk_tier() {
        let dir = std::env::temp_dir().join(format!("power-serve-state-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let state = ServeState::try_new(ServeConfig {
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        })
        .unwrap();
        assert!(state.store.has_archive());
        assert_eq!(state.warmed, 0, "fresh archive has nothing to warm");
        assert_eq!(state.archive.as_ref().unwrap().stats().entries, 0);
        let plain = ServeState::default();
        assert!(!plain.store.has_archive());
        assert!(plain.archive.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Shared server state: configuration, system catalog, trace store,
//! metrics.
//!
//! One [`ServeState`] is shared (via `Arc`) by every worker thread. All
//! interior mutability lives in the [`TraceStore`] and [`Metrics`] — the
//! catalog and configuration are immutable after construction, so
//! handlers never contend except on the caches they are supposed to
//! share.

use crate::metrics::Metrics;
use power_sim::store::TraceStore;
use power_sim::systems::SystemPreset;
use std::time::Instant;

/// Resource and simulation-shape limits for the service.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// LRU cap on cached sweeps (entries). `None` disables the bound.
    pub store_capacity: Option<usize>,
    /// Largest machine a single request may simulate. Requests naming a
    /// preset larger than this must scale it down via `nodes`.
    pub max_nodes: usize,
    /// Cap on `nodes * samples` for one sweep, bounding per-request
    /// memory and CPU.
    pub max_cells: u64,
    /// Worker threads each simulation sweep may use. Kept small by
    /// default — request-level parallelism comes from the server's worker
    /// pool, not from each sweep fanning out.
    pub sim_threads: usize,
    /// Per-node relative noise sigma for served simulations.
    pub noise_sigma: f64,
    /// Machine-wide relative noise sigma for served simulations.
    pub common_noise_sigma: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            store_capacity: Some(256),
            max_nodes: 4096,
            max_cells: 16_000_000,
            sim_threads: 2,
            noise_sigma: 0.01,
            common_noise_sigma: 0.004,
        }
    }
}

/// Immutable-after-construction state shared by all workers.
pub struct ServeState {
    /// Service limits.
    pub config: ServeConfig,
    /// Every queryable system preset.
    pub catalog: Vec<SystemPreset>,
    /// The sweep cache all simulation-backed endpoints share.
    pub store: TraceStore,
    /// Request metrics.
    pub metrics: Metrics,
    /// Server start time, for `/healthz` uptime.
    pub started: Instant,
}

impl ServeState {
    /// Builds the state: the full preset catalog (the four Figure 1 /
    /// Table 2 trace systems plus the six Table 3/4 variability systems)
    /// and a trace store bounded per `config`.
    pub fn new(config: ServeConfig) -> Self {
        let mut catalog = SystemPreset::trace_presets();
        catalog.extend(SystemPreset::variability_presets());
        let store = match config.store_capacity {
            Some(cap) => TraceStore::bounded(cap),
            None => TraceStore::new(),
        };
        ServeState {
            config,
            catalog,
            store,
            metrics: Metrics::new(),
            started: Instant::now(),
        }
    }

    /// Looks up a preset by name (ASCII case-insensitive).
    pub fn preset(&self, name: &str) -> Option<&SystemPreset> {
        self.catalog
            .iter()
            .find(|p| p.name.eq_ignore_ascii_case(name))
    }
}

impl Default for ServeState {
    fn default() -> Self {
        ServeState::new(ServeConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_holds_all_ten_paper_systems() {
        let state = ServeState::default();
        assert_eq!(state.catalog.len(), 10);
        assert!(state.preset("L-CSC").is_some());
        assert!(state.preset("l-csc").is_some(), "lookup ignores case");
        assert!(state.preset("Titan").is_some());
        assert!(state.preset("HAL 9000").is_none());
    }

    #[test]
    fn store_capacity_follows_config() {
        let state = ServeState::default();
        assert_eq!(state.store.capacity(), Some(256));
        let unbounded = ServeState::new(ServeConfig {
            store_capacity: None,
            ..ServeConfig::default()
        });
        assert_eq!(unbounded.store.capacity(), None);
    }
}

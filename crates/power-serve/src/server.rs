//! The TCP front end: accept thread, bounded admission queue, worker
//! pool, and graceful shutdown.
//!
//! Concurrency shape:
//!
//! * One **accept thread** owns the listener. Every connection it
//!   accepts is counted `offered`, then either pushed onto the bounded
//!   queue (`accepted`) or — if the queue is at capacity — answered
//!   directly with `503` + `Retry-After` and closed (`rejected`). The
//!   accept thread never parses requests, so rejection stays cheap even
//!   when every worker is busy.
//! * A fixed pool of **worker threads** pops connections off the queue
//!   and serves sequential requests on each until the client asks for
//!   `Connection: close`, the idle timeout expires between requests, the
//!   per-connection request cap is reached, or a drain begins — then the
//!   response carries `connection: close` and the socket is closed. A
//!   [`crate::http::RequestBuffer`] per connection preserves pipelined
//!   bytes over-read past each body.
//! * **Graceful shutdown** flips a flag, wakes the accept thread with a
//!   loopback connection, joins it, then lets the workers drain the
//!   queue and every in-flight request before joining them. No accepted
//!   connection is abandoned; a keep-alive connection finishes the
//!   request it is serving and is closed after it.
//!
//! The conservation law `offered == accepted + rejected` counts
//! **connections**, not requests — one admitted keep-alive connection
//! may serve many requests, which is exactly the point. The load
//! generator checks the same connection-level law from the outside (see
//! [`crate::loadgen`]); requests-per-connection is observable via the
//! `power_serve_connection_requests` histogram on `/metrics`.

use crate::http::{HttpError, HttpLimits, Request, RequestBuffer, Response};
use crate::metrics::Endpoint;
use crate::router::route;
use crate::state::ServeState;
use power_fleet::FleetDriver;
use std::collections::VecDeque;
use std::io;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for the TCP front end.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address. Use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Admission queue depth. Connections beyond `workers` in flight plus
    /// this many waiting are rejected with `503`.
    pub queue_depth: usize,
    /// Parser limits (head and body byte caps).
    pub limits: HttpLimits,
    /// Socket read timeout while a request is arriving; a connection
    /// that stalls mid-request longer than this is answered `408` and
    /// closed, so a silent client cannot pin a worker.
    pub read_timeout: Duration,
    /// How long a keep-alive connection may sit idle **between**
    /// requests before the server closes it (silently — an expired idle
    /// connection is a clean close, not a protocol error).
    pub idle_timeout: Duration,
    /// Maximum sequential requests served on one connection before the
    /// server closes it (`connection: close` on the last response), so
    /// drain and rebalancing always terminate. Clamped to at least 1.
    pub max_requests_per_connection: u64,
    /// `Retry-After` seconds advertised on `503` rejections.
    pub retry_after_s: u32,
    /// Sleep inserted after each full fleet scheduling round. Zero (the
    /// default) drives campaigns at full speed; a positive pace keeps
    /// them observably in flight for demos and crash tests.
    pub fleet_pace: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 16,
            limits: HttpLimits::default(),
            read_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(2),
            max_requests_per_connection: 1024,
            retry_after_s: 1,
            fleet_pace: Duration::ZERO,
        }
    }
}

struct Shared {
    state: Arc<ServeState>,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    limits: HttpLimits,
    read_timeout: Duration,
    idle_timeout: Duration,
    max_requests_per_connection: u64,
}

/// A running server. Dropping it without calling [`Server::shutdown`]
/// detaches the threads; call `shutdown` for a clean drain.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    fleet_driver: Option<FleetDriver>,
}

impl Server {
    /// Binds the listener and spawns the accept thread and worker pool.
    pub fn start(config: ServerConfig, state: Arc<ServeState>) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            state,
            queue: Mutex::new(VecDeque::with_capacity(config.queue_depth)),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            limits: config.limits,
            read_timeout: config.read_timeout,
            idle_timeout: config.idle_timeout,
            max_requests_per_connection: config.max_requests_per_connection.max(1),
        });

        let workers = config.workers.max(1);
        let queue_depth = config.queue_depth.max(1);
        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("power-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        let accept_shared = Arc::clone(&shared);
        let retry_after = config.retry_after_s;
        let accept_handle = std::thread::Builder::new()
            .name("power-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared, queue_depth, retry_after))?;

        let fleet_driver = FleetDriver::spawn(Arc::clone(&shared.state.fleet), config.fleet_pace);
        Ok(Server {
            local_addr,
            shared,
            accept_handle: Some(accept_handle),
            worker_handles,
            fleet_driver: Some(fleet_driver),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared state, for inspecting metrics and the store.
    pub fn state(&self) -> &Arc<ServeState> {
        &self.shared.state
    }

    /// Graceful shutdown: stop accepting, drain the queue and in-flight
    /// requests, stop the fleet driver, join every thread.
    pub fn shutdown(mut self) {
        if let Some(driver) = self.fleet_driver.take() {
            driver.stop();
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept thread out of its blocking accept(). The wake
        // connection is detected via the shutdown flag before it is
        // counted, so it never perturbs the admission accounting.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // Workers drain whatever was already admitted, then exit.
        self.shared.queue_cv.notify_all();
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared, queue_depth: usize, retry_after_s: u32) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The shutdown wake-up (or a client racing it); either way we
            // are no longer admitting.
            break;
        }
        shared.state.metrics.connection_offered();
        let overflow = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if queue.len() >= queue_depth {
                Some(stream)
            } else {
                queue.push_back(stream);
                shared.state.metrics.connection_accepted();
                shared.queue_cv.notify_one();
                None
            }
        };
        if let Some(stream) = overflow {
            shared.state.metrics.connection_rejected();
            reject_saturated(stream, shared, retry_after_s);
        }
    }
}

/// Answers a connection the queue could not admit. Kept out of the
/// accept loop's queue lock; a short write timeout keeps a slow reader
/// from stalling admission.
fn reject_saturated(mut stream: TcpStream, shared: &Shared, retry_after_s: u32) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let response = Response::error(503, "server saturated; retry shortly")
        .with_header("retry-after", retry_after_s.to_string());
    let _ = response.write_to(&mut stream);
    // Lingering close: signal end-of-response, then drain the request
    // bytes the client already sent. Closing with unread data in the
    // receive buffer would RST the connection and can destroy the 503
    // before the client reads it. The drain is bounded (few reads, short
    // timeout) so a slow sender cannot pin the accept thread.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 1024];
    for _ in 0..8 {
        match std::io::Read::read(&mut stream, &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    shared
        .state
        .metrics
        .record(Endpoint::Other, 503, Duration::ZERO);
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        match stream {
            Some(stream) => handle_connection(shared, stream),
            None => break,
        }
    }
}

/// Serves sequential requests on one connection until it is done:
/// client-requested close, idle expiry, the per-connection cap, a
/// protocol error, or a drain. Exactly one [`RequestBuffer`] lives for
/// the whole connection so pipelined bytes are never lost.
fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.read_timeout));
    // Persistent connections interleave small writes with reads; Nagle
    // plus the peer's delayed ACK would serialize that at ~40 ms/turn.
    let _ = stream.set_nodelay(true);
    let mut buffer = RequestBuffer::new();
    let mut served: u64 = 0;
    loop {
        // Between requests the socket waits under the (usually shorter)
        // idle budget — but only for the *first* bytes. Once any byte
        // of the next request arrives the connection is mid-request and
        // the full read budget governs again, so a request whose bytes
        // merely straddle the idle deadline completes, while one that
        // stalls half-written times out under `read_timeout` into a 408
        // below (never a silent idle close). A pipelined request
        // already buffered skips the wait entirely.
        if served > 0 && buffer.buffered() == 0 {
            let _ = stream.set_read_timeout(Some(shared.idle_timeout));
            let mut first = [0u8; 512];
            match stream.read(&mut first) {
                // Clean close or idle expiry between requests: nothing
                // to answer, nothing to count beyond the admission the
                // connection already consumed.
                Ok(0) | Err(_) => break,
                Ok(n) => buffer.push_bytes(&first[..n]),
            }
            let _ = stream.set_read_timeout(Some(shared.read_timeout));
        }
        let started = Instant::now();
        match buffer.next_request(&mut stream, &shared.limits) {
            Ok(Some(request)) => {
                let (endpoint, response) = dispatch(&shared.state, &request);
                served += 1;
                // Decide the connection's fate before writing so the
                // response can advertise it. A drain that begins during
                // this request still gets its answer — with `close`.
                let keep_alive = request.keep_alive()
                    && served < shared.max_requests_per_connection
                    && !shared.shutdown.load(Ordering::SeqCst);
                shared
                    .state
                    .metrics
                    .record(endpoint, response.status, started.elapsed());
                if response.write_to_conn(&mut stream, keep_alive).is_err() || !keep_alive {
                    break;
                }
            }
            Ok(None) => {
                // Clean close before the first request, or EOF with
                // nothing buffered.
                break;
            }
            Err(err) => {
                let response = error_response(&err);
                shared
                    .state
                    .metrics
                    .record(Endpoint::Other, response.status, started.elapsed());
                let _ = response.write_to(&mut stream);
                break;
            }
        }
    }
    shared.state.metrics.connection_closed(served);
}

/// Routes one request, converting a handler panic into a `500` instead of
/// killing the worker thread.
fn dispatch(state: &Arc<ServeState>, request: &Request) -> (Endpoint, Response) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| route(state, request)));
    match result {
        Ok(routed) => routed,
        Err(_) => (
            Endpoint::Other,
            Response::error(500, "internal error while handling the request"),
        ),
    }
}

fn error_response(err: &HttpError) -> Response {
    Response::error(err.status(), err.detail())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen;

    #[test]
    fn starts_serves_and_shuts_down() {
        let server = Server::start(ServerConfig::default(), Arc::new(ServeState::default()))
            .expect("bind loopback");
        let addr = server.local_addr();
        let (status, body) = loadgen::http_request(
            addr,
            &loadgen::get_request("/healthz"),
            Duration::from_secs(5),
        )
        .expect("healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\""), "{body}");
        assert!(body.contains("\"ok\""), "{body}");

        let admission = server.state().metrics.admission();
        assert!(admission.conserved());
        assert_eq!(admission.offered, 1);
        server.shutdown();
    }

    /// A keep-alive connection whose next request stalls half-written
    /// must be answered with `408 Request Timeout`, not silently closed
    /// as idle — the idle budget is only for connections with *no*
    /// request bytes outstanding.
    #[test]
    fn stalled_half_written_request_gets_408_not_silent_close() {
        let config = ServerConfig {
            idle_timeout: Duration::from_millis(150),
            read_timeout: Duration::from_millis(600),
            ..ServerConfig::default()
        };
        let server = Server::start(config, Arc::new(ServeState::default())).expect("bind loopback");
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        use std::io::Write;

        // Request 1 completes normally and keeps the connection alive.
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let first = read_response(&mut stream);
        assert!(first.starts_with("HTTP/1.1 200"), "{first}");

        // Request 2 sends half a head, then stalls well past the idle
        // timeout. The server must classify this as a request timeout.
        stream.write_all(b"GET /healthz HTT").unwrap();
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).expect("response then close");
        let rest = String::from_utf8_lossy(&rest);
        assert!(
            rest.starts_with("HTTP/1.1 408"),
            "half-written request must get 408, got: {rest:?}"
        );
        assert_eq!(server.state().metrics.errors(Endpoint::Other), 1);
        server.shutdown();
    }

    /// Once request bytes have started arriving, the *read* budget
    /// governs — a request whose bytes merely straddle the (shorter)
    /// idle deadline still completes.
    #[test]
    fn half_written_request_straddling_idle_timeout_completes() {
        let config = ServerConfig {
            idle_timeout: Duration::from_millis(100),
            read_timeout: Duration::from_secs(2),
            ..ServerConfig::default()
        };
        let server = Server::start(config, Arc::new(ServeState::default())).expect("bind loopback");
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        use std::io::Write;

        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let first = read_response(&mut stream);
        assert!(first.starts_with("HTTP/1.1 200"), "{first}");

        // Half the second request, a pause longer than idle_timeout
        // (but within read_timeout), then the rest: must succeed.
        stream.write_all(b"GET /healthz HT").unwrap();
        std::thread::sleep(Duration::from_millis(300));
        stream.write_all(b"TP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let second = read_response(&mut stream);
        assert!(
            second.starts_with("HTTP/1.1 200"),
            "straddling request must complete, got: {second:?}"
        );

        // A connection idle between requests (no bytes at all) still
        // expires silently — no 408, just EOF.
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).expect("silent close");
        assert!(rest.is_empty(), "idle expiry must not write: {rest:?}");
        assert_eq!(server.state().metrics.errors(Endpoint::Other), 0);
        server.shutdown();
    }

    /// Reads one HTTP response (head + content-length body) as a string.
    fn read_response(stream: &mut TcpStream) -> String {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        loop {
            let n = stream.read(&mut chunk).expect("read response");
            assert!(n > 0, "peer closed mid-response");
            buf.extend_from_slice(&chunk[..n]);
            if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = String::from_utf8_lossy(&buf[..head_end + 4]).to_string();
                let body_len = head
                    .lines()
                    .find_map(|l| {
                        l.to_ascii_lowercase()
                            .strip_prefix("content-length:")
                            .map(|v| v.trim().parse::<usize>().unwrap())
                    })
                    .unwrap_or(0);
                if buf.len() >= head_end + 4 + body_len {
                    return String::from_utf8_lossy(&buf).to_string();
                }
            }
        }
    }

    #[test]
    fn malformed_request_gets_400_and_connection_closes() {
        let server = Server::start(ServerConfig::default(), Arc::new(ServeState::default()))
            .expect("bind loopback");
        let addr = server.local_addr();
        let (status, _) =
            loadgen::http_request(addr, b"NOT-A-REQUEST\r\n\r\n", Duration::from_secs(5))
                .expect("server answers malformed input");
        assert_eq!(status, 400);
        assert_eq!(server.state().metrics.errors(Endpoint::Other), 1);
        server.shutdown();
    }
}

//! `power-serve`: a std-only concurrent measurement query service.
//!
//! The crate exposes the repository's simulation + estimation stack over
//! a deliberately small HTTP/1.1 subset — no async runtime, no external
//! HTTP dependency, just `TcpListener`, a fixed worker pool, and a
//! bounded admission queue with explicit backpressure:
//!
//! * [`json`] — a self-contained JSON parser/renderer (the workspace's
//!   vendored `serde` is a marker-trait shim, so the wire format lives
//!   here);
//! * [`http`] — the request parser and response writer, with hard byte
//!   caps, total error enumeration (`400`/`408`/`413`/`431`), and a
//!   per-connection [`http::RequestBuffer`] that preserves pipelined
//!   bytes so one connection can serve sequential requests;
//! * [`router`] — pure request → response dispatch over the endpoints
//!   (`/v1/measure`, `/v1/sample-size`, `/v1/trace/window`,
//!   `/v1/systems`, the campaign-fleet CRUD under `/v1/campaigns`, the
//!   live `/v1/leaderboard`, `/healthz`, `/metrics`);
//! * [`state`] — shared catalog + the single-flight, LRU-bounded
//!   [`power_sim::store::TraceStore`] all simulation endpoints go
//!   through, plus the [`power_fleet::Fleet`] behind the campaign
//!   endpoints (journalled to `<store_dir>/fleet.wal` when a store
//!   directory is configured, so a killed server resumes every
//!   in-flight campaign at its watermark);
//! * [`metrics`] — per-endpoint counters and latency histograms with a
//!   Prometheus text rendering, plus the admission conservation law
//!   `offered == accepted + rejected`;
//! * [`server`] — the accept thread, worker pool, keep-alive connection
//!   lifecycle (idle timeout, per-connection request cap), saturation
//!   `503`s and graceful drain;
//! * [`loadgen`] — a loopback load generator with cold and pooled
//!   keep-alive connection disciplines whose connection accounting
//!   lines up with the server's admission counters, plus optional
//!   `Retry-After`-honoring retry on `503`.

pub mod http;
pub mod json;
pub mod loadgen;
pub mod metrics;
pub mod router;
pub mod server;
pub mod state;

pub use http::{HttpError, HttpLimits, Request, RequestBuffer, Response};
pub use json::Json;
pub use loadgen::{
    CampaignLoadPlan, CampaignReport, LoadPlan, LoadReport, PooledClient, PooledResponse,
};
pub use metrics::{AdmissionStats, ArchiveGauges, Endpoint, FleetGauges, Metrics};
pub use router::route;
pub use server::{Server, ServerConfig};
pub use state::{ServeConfig, ServeState};

//! Per-endpoint request metrics and the `/metrics` text rendering.
//!
//! Counters are lock-free atomics; latency histograms reuse
//! [`power_stats::histogram::Histogram`] (fixed-range linear bins whose
//! edge-clamping insert keeps totals conserved) behind a mutex that is
//! held only for one `insert`. The rendering is Prometheus text
//! exposition format: `# TYPE` lines, labelled counters, and cumulative
//! `_bucket`/`_sum`/`_count` histogram series.
//!
//! Two counter families carry the service's conservation laws:
//!
//! * admission: `offered == accepted + rejected` — every **connection**
//!   the listener sees is either handed to a worker or turned away with
//!   503 (with keep-alive, one accepted connection serves many
//!   requests; the `power_serve_connection_requests` histogram records
//!   how many);
//! * per endpoint: `requests == errors + successes` is implied by
//!   labelling errors separately.

use power_sim::store::CacheStats;
use power_stats::histogram::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// The service's endpoints, used as metric labels and histogram slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/measure`.
    Measure,
    /// `POST /v1/sample-size`.
    SampleSize,
    /// `GET /v1/trace/window`.
    TraceWindow,
    /// `POST|GET /v1/campaigns` and `GET|DELETE /v1/campaigns/:id`.
    Campaigns,
    /// `GET /v1/leaderboard`.
    Leaderboard,
    /// `GET /v1/systems`.
    Systems,
    /// `GET /healthz`.
    Healthz,
    /// `GET /metrics`.
    Metrics,
    /// Anything else (404s, parse failures, unknown paths).
    Other,
}

impl Endpoint {
    /// Every endpoint, in rendering order.
    pub const ALL: [Endpoint; 9] = [
        Endpoint::Measure,
        Endpoint::SampleSize,
        Endpoint::TraceWindow,
        Endpoint::Campaigns,
        Endpoint::Leaderboard,
        Endpoint::Systems,
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Other,
    ];

    /// Dense index into per-endpoint arrays.
    pub fn index(self) -> usize {
        match self {
            Endpoint::Measure => 0,
            Endpoint::SampleSize => 1,
            Endpoint::TraceWindow => 2,
            Endpoint::Campaigns => 3,
            Endpoint::Leaderboard => 4,
            Endpoint::Systems => 5,
            Endpoint::Healthz => 6,
            Endpoint::Metrics => 7,
            Endpoint::Other => 8,
        }
    }

    /// The metric label value.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Measure => "measure",
            Endpoint::SampleSize => "sample_size",
            Endpoint::TraceWindow => "trace_window",
            Endpoint::Campaigns => "campaigns",
            Endpoint::Leaderboard => "leaderboard",
            Endpoint::Systems => "systems",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Other => "other",
        }
    }
}

/// Latency histogram range: 40 linear bins over [0, 100] ms. Requests
/// slower than the range clamp into the top bin (totals stay conserved);
/// the `_sum` series still accumulates true durations.
const LATENCY_BINS: usize = 40;
const LATENCY_MAX_US: f64 = 100_000.0;

/// Requests-served-per-connection histogram: 32 linear bins over
/// [0, 128] requests; longer-lived connections clamp into the top bin.
const CONN_REQUESTS_BINS: usize = 32;
const CONN_REQUESTS_MAX: f64 = 128.0;

/// Gauges describing the campaign fleet, when one is attached.
///
/// Cardinality is bounded by construction: campaigns are aggregated
/// into the four lifecycle states (`power_serve_campaigns{state=...}`),
/// never exported as per-campaign series — a fleet of 10 000 campaigns
/// costs the same scrape budget as a fleet of 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetGauges {
    /// Campaign counts by lifecycle state label, in display order.
    pub states: [(&'static str, u64); 4],
    /// Ingest plane shards.
    pub shards: u64,
    /// Samples handed to the plane (live + retired campaigns).
    pub offered: u64,
    /// Samples accepted behind watermarks.
    pub accepted: u64,
    /// Samples dropped as too late.
    pub late_dropped: u64,
    /// Samples dropped to ring backpressure.
    pub backpressure_dropped: u64,
    /// Duplicate sequence numbers discarded.
    pub duplicates: u64,
    /// Samples still buffered ahead of a watermark.
    pub pending: u64,
}

struct EndpointSlot {
    requests: AtomicU64,
    errors: AtomicU64,
    latency_sum_us: AtomicU64,
    latency: Mutex<Histogram>,
}

impl EndpointSlot {
    fn new() -> Self {
        EndpointSlot {
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latency_sum_us: AtomicU64::new(0),
            latency: Mutex::new(
                Histogram::with_range(0.0, LATENCY_MAX_US, LATENCY_BINS)
                    .expect("static latency range is valid"),
            ),
        }
    }
}

/// Admission counters; see the module docs for the conservation law.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionStats {
    /// Connections the listener accepted from the OS.
    pub offered: u64,
    /// Connections handed to a worker.
    pub accepted: u64,
    /// Connections turned away with `503` because the queue was full.
    pub rejected: u64,
}

impl AdmissionStats {
    /// The admission conservation law.
    pub fn conserved(&self) -> bool {
        self.offered == self.accepted + self.rejected
    }
}

/// Gauges describing the on-disk archive tier, when one is attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArchiveGauges {
    /// Live sweeps in the archive.
    pub entries: u64,
    /// Segment files on disk.
    pub segments: u64,
    /// Bytes of live (referenced) records.
    pub live_bytes: u64,
    /// Bytes of superseded records awaiting compaction.
    pub dead_bytes: u64,
    /// Sweeps loaded into the memory tier at startup.
    pub warmed: u64,
}

/// The server's metrics registry.
pub struct Metrics {
    endpoints: [EndpointSlot; 9],
    offered: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    connections_closed: AtomicU64,
    connection_requests_sum: AtomicU64,
    connection_requests: Mutex<Histogram>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            endpoints: std::array::from_fn(|_| EndpointSlot::new()),
            offered: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            connections_closed: AtomicU64::new(0),
            connection_requests_sum: AtomicU64::new(0),
            connection_requests: Mutex::new(
                Histogram::with_range(0.0, CONN_REQUESTS_MAX, CONN_REQUESTS_BINS)
                    .expect("static connection-requests range is valid"),
            ),
        }
    }
}

impl Metrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one handled request.
    pub fn record(&self, endpoint: Endpoint, status: u16, latency: Duration) {
        let slot = &self.endpoints[endpoint.index()];
        slot.requests.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            slot.errors.fetch_add(1, Ordering::Relaxed);
        }
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        slot.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        slot.latency
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(us as f64);
    }

    /// Counts a connection the listener accepted from the OS.
    pub fn connection_offered(&self) {
        self.offered.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a connection handed to a worker.
    pub fn connection_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a connection rejected with `503`.
    pub fn connection_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a worker-handled connection closing after serving
    /// `requests` sequential requests (0 for an idle connection that
    /// never sent one).
    pub fn connection_closed(&self, requests: u64) {
        self.connections_closed.fetch_add(1, Ordering::Relaxed);
        self.connection_requests_sum
            .fetch_add(requests, Ordering::Relaxed);
        self.connection_requests
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(requests as f64);
    }

    /// Worker-handled connections that have closed.
    pub fn connections_closed(&self) -> u64 {
        self.connections_closed.load(Ordering::Relaxed)
    }

    /// Total requests served across closed connections; together with
    /// [`Metrics::connections_closed`] this gives the mean keep-alive
    /// reuse.
    pub fn connection_requests_sum(&self) -> u64 {
        self.connection_requests_sum.load(Ordering::Relaxed)
    }

    /// A snapshot of the admission counters. Reading `offered` last keeps
    /// the conservation law intact under concurrent admissions: a
    /// connection counted in `offered` may not yet be classified, but
    /// never the reverse.
    pub fn admission(&self) -> AdmissionStats {
        let accepted = self.accepted.load(Ordering::Acquire);
        let rejected = self.rejected.load(Ordering::Acquire);
        let offered = self.offered.load(Ordering::Acquire);
        AdmissionStats {
            offered: offered.max(accepted + rejected),
            accepted,
            rejected,
        }
    }

    /// Total requests recorded for `endpoint`.
    pub fn requests(&self, endpoint: Endpoint) -> u64 {
        self.endpoints[endpoint.index()]
            .requests
            .load(Ordering::Relaxed)
    }

    /// Total error (status >= 400) responses for `endpoint`.
    pub fn errors(&self, endpoint: Endpoint) -> u64 {
        self.endpoints[endpoint.index()]
            .errors
            .load(Ordering::Relaxed)
    }

    /// Renders the Prometheus text exposition, folding in the trace
    /// store's cache counters and, when attached, the archive and
    /// campaign-fleet gauges.
    pub fn render_prometheus(
        &self,
        stats: CacheStats,
        archive: Option<ArchiveGauges>,
        fleet: Option<FleetGauges>,
    ) -> String {
        let mut out = String::with_capacity(4096);

        out.push_str("# TYPE power_serve_requests_total counter\n");
        for ep in Endpoint::ALL {
            out.push_str(&format!(
                "power_serve_requests_total{{endpoint=\"{}\"}} {}\n",
                ep.label(),
                self.requests(ep)
            ));
        }
        out.push_str("# TYPE power_serve_errors_total counter\n");
        for ep in Endpoint::ALL {
            out.push_str(&format!(
                "power_serve_errors_total{{endpoint=\"{}\"}} {}\n",
                ep.label(),
                self.errors(ep)
            ));
        }

        let admission = self.admission();
        out.push_str("# TYPE power_serve_admission_total counter\n");
        out.push_str(&format!(
            "power_serve_admission_total{{outcome=\"offered\"}} {}\n",
            admission.offered
        ));
        out.push_str(&format!(
            "power_serve_admission_total{{outcome=\"accepted\"}} {}\n",
            admission.accepted
        ));
        out.push_str(&format!(
            "power_serve_admission_total{{outcome=\"rejected\"}} {}\n",
            admission.rejected
        ));

        out.push_str("# TYPE power_serve_store_total counter\n");
        for (outcome, value) in [
            ("hits", stats.hits),
            ("derived", stats.derived),
            ("misses", stats.misses),
            ("coalesced", stats.coalesced),
            ("evictions", stats.evictions),
            ("archive_hits", stats.archive_hits),
            ("archive_writes", stats.archive_writes),
        ] {
            out.push_str(&format!(
                "power_serve_store_total{{outcome=\"{outcome}\"}} {value}\n"
            ));
        }
        out.push_str("# TYPE power_serve_store_entries gauge\n");
        out.push_str(&format!("power_serve_store_entries {}\n", stats.entries));

        out.push_str("# TYPE power_serve_archive_pruned_queries_total counter\n");
        out.push_str(&format!(
            "power_serve_archive_pruned_queries_total {}\n",
            stats.archive_pruned_queries
        ));
        out.push_str("# TYPE power_serve_archive_blocks_skipped_total counter\n");
        out.push_str(&format!(
            "power_serve_archive_blocks_skipped_total {}\n",
            stats.blocks_skipped
        ));

        if let Some(gauges) = archive {
            out.push_str("# TYPE power_serve_archive_entries gauge\n");
            out.push_str(&format!("power_serve_archive_entries {}\n", gauges.entries));
            out.push_str("# TYPE power_serve_archive_segments gauge\n");
            out.push_str(&format!(
                "power_serve_archive_segments {}\n",
                gauges.segments
            ));
            out.push_str("# TYPE power_serve_archive_bytes gauge\n");
            out.push_str(&format!(
                "power_serve_archive_bytes{{kind=\"live\"}} {}\n",
                gauges.live_bytes
            ));
            out.push_str(&format!(
                "power_serve_archive_bytes{{kind=\"dead\"}} {}\n",
                gauges.dead_bytes
            ));
            out.push_str("# TYPE power_serve_archive_warmed gauge\n");
            out.push_str(&format!("power_serve_archive_warmed {}\n", gauges.warmed));
        }

        if let Some(fleet) = fleet {
            out.push_str("# TYPE power_serve_campaigns gauge\n");
            for (state, count) in fleet.states {
                out.push_str(&format!(
                    "power_serve_campaigns{{state=\"{state}\"}} {count}\n"
                ));
            }
            out.push_str("# TYPE power_serve_fleet_shards gauge\n");
            out.push_str(&format!("power_serve_fleet_shards {}\n", fleet.shards));
            out.push_str("# TYPE power_serve_fleet_samples_total counter\n");
            for (outcome, value) in [
                ("offered", fleet.offered),
                ("accepted", fleet.accepted),
                ("late_dropped", fleet.late_dropped),
                ("backpressure_dropped", fleet.backpressure_dropped),
                ("duplicates", fleet.duplicates),
                ("pending", fleet.pending),
            ] {
                out.push_str(&format!(
                    "power_serve_fleet_samples_total{{outcome=\"{outcome}\"}} {value}\n"
                ));
            }
        }

        out.push_str("# TYPE power_serve_latency_us histogram\n");
        for ep in Endpoint::ALL {
            let slot = &self.endpoints[ep.index()];
            let hist = slot.latency.lock().unwrap_or_else(|e| e.into_inner());
            let labels = format!("endpoint=\"{}\"", ep.label());
            render_histogram(
                &mut out,
                "power_serve_latency_us",
                &labels,
                &hist,
                slot.latency_sum_us.load(Ordering::Relaxed),
            );
        }

        out.push_str("# TYPE power_serve_connections_closed_total counter\n");
        out.push_str(&format!(
            "power_serve_connections_closed_total {}\n",
            self.connections_closed()
        ));
        out.push_str("# TYPE power_serve_connection_requests histogram\n");
        {
            let hist = self
                .connection_requests
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            render_histogram(
                &mut out,
                "power_serve_connection_requests",
                "",
                &hist,
                self.connection_requests_sum(),
            );
        }
        out
    }
}

/// Renders one Prometheus histogram: the **full declared bucket
/// ladder** (every `le`, including empty interior buckets — consumers
/// interpolate quantiles from cumulative buckets, and a missing rung
/// breaks the interpolation), then `_sum` and `_count`.
fn render_histogram(out: &mut String, name: &str, labels: &str, hist: &Histogram, sum: u64) {
    let mut cumulative = 0u64;
    for (i, count) in hist.counts().iter().enumerate() {
        cumulative += count;
        let (_, hi) = hist.bin_edges(i);
        let le = if i + 1 == hist.bins() {
            "+Inf".to_string()
        } else {
            format!("{hi:.0}")
        };
        let sep = if labels.is_empty() { "" } else { "," };
        out.push_str(&format!(
            "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}\n"
        ));
    }
    if labels.is_empty() {
        out.push_str(&format!("{name}_sum {sum}\n"));
        out.push_str(&format!("{name}_count {}\n", hist.total()));
    } else {
        out.push_str(&format!("{name}_sum{{{labels}}} {sum}\n"));
        out.push_str(&format!("{name}_count{{{labels}}} {}\n", hist.total()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_renders() {
        let m = Metrics::new();
        m.record(Endpoint::Measure, 200, Duration::from_micros(1500));
        m.record(Endpoint::Measure, 400, Duration::from_micros(300));
        m.record(Endpoint::Healthz, 200, Duration::from_micros(40));
        m.connection_offered();
        m.connection_accepted();
        m.connection_offered();
        m.connection_rejected();
        assert_eq!(m.requests(Endpoint::Measure), 2);
        assert_eq!(m.errors(Endpoint::Measure), 1);
        let admission = m.admission();
        assert!(admission.conserved());
        assert_eq!(admission.offered, 2);

        let page = m.render_prometheus(
            CacheStats {
                hits: 5,
                derived: 1,
                misses: 2,
                coalesced: 3,
                evictions: 0,
                archive_hits: 4,
                archive_writes: 2,
                archive_pruned_queries: 6,
                blocks_skipped: 120,
                entries: 2,
            },
            Some(ArchiveGauges {
                entries: 2,
                segments: 1,
                live_bytes: 4096,
                dead_bytes: 512,
                warmed: 2,
            }),
            Some(FleetGauges {
                states: [("live", 3), ("stopped", 5), ("exhausted", 1), ("failed", 0)],
                shards: 16,
                offered: 100,
                accepted: 98,
                late_dropped: 1,
                backpressure_dropped: 0,
                duplicates: 1,
                pending: 0,
            }),
        );
        assert!(page.contains("power_serve_requests_total{endpoint=\"measure\"} 2"));
        assert!(page.contains("power_serve_errors_total{endpoint=\"measure\"} 1"));
        assert!(page.contains("power_serve_admission_total{outcome=\"offered\"} 2"));
        assert!(page.contains("power_serve_store_total{outcome=\"coalesced\"} 3"));
        assert!(page.contains("power_serve_store_total{outcome=\"archive_hits\"} 4"));
        assert!(page.contains("power_serve_store_total{outcome=\"archive_writes\"} 2"));
        assert!(page.contains("power_serve_archive_pruned_queries_total 6"));
        assert!(page.contains("power_serve_archive_blocks_skipped_total 120"));
        assert!(page.contains("power_serve_archive_entries 2"));
        assert!(page.contains("power_serve_archive_segments 1"));
        assert!(page.contains("power_serve_archive_bytes{kind=\"live\"} 4096"));
        assert!(page.contains("power_serve_archive_bytes{kind=\"dead\"} 512"));
        assert!(page.contains("power_serve_archive_warmed 2"));
        assert!(page.contains("power_serve_campaigns{state=\"live\"} 3"));
        assert!(page.contains("power_serve_campaigns{state=\"failed\"} 0"));
        assert!(page.contains("power_serve_fleet_shards 16"));
        assert!(page.contains("power_serve_fleet_samples_total{outcome=\"accepted\"} 98"));
        assert!(page.contains("power_serve_latency_us_count{endpoint=\"measure\"} 2"));
        assert!(page.contains("le=\"+Inf\"} 2"));
    }

    /// Every declared `le` rung appears — including empty interior
    /// buckets — and cumulative counts are monotone non-decreasing, so
    /// Prometheus quantile interpolation has the full ladder to work on.
    #[test]
    fn histogram_emits_full_bucket_ladder_with_monotone_counts() {
        let m = Metrics::new();
        // One fast and one clamped-slow request leave many empty
        // interior buckets between them.
        m.record(Endpoint::Measure, 200, Duration::from_micros(10));
        m.record(Endpoint::Measure, 200, Duration::from_secs(10));
        let page = m.render_prometheus(CacheStats::default(), None, None);

        let prefix = "power_serve_latency_us_bucket{endpoint=\"measure\",le=\"";
        let mut rungs = 0;
        let mut previous = 0u64;
        let mut saw_inf = false;
        for line in page.lines().filter(|l| l.starts_with(prefix)) {
            rungs += 1;
            let rest = &line[prefix.len()..];
            let (le, count) = rest.split_once("\"} ").expect("bucket line shape");
            let count: u64 = count.trim().parse().expect("bucket count");
            assert!(count >= previous, "cumulative counts must not decrease");
            previous = count;
            saw_inf |= le == "+Inf";
        }
        assert_eq!(rungs, LATENCY_BINS, "every declared le must appear");
        assert!(saw_inf, "the +Inf terminator must appear");
        assert_eq!(previous, 2, "the ladder tops out at the total");
    }

    #[test]
    fn connection_counters_render() {
        let m = Metrics::new();
        m.connection_closed(9);
        m.connection_closed(0);
        assert_eq!(m.connections_closed(), 2);
        assert_eq!(m.connection_requests_sum(), 9);
        let page = m.render_prometheus(CacheStats::default(), None, None);
        assert!(page.contains("power_serve_connections_closed_total 2"));
        assert!(page.contains("power_serve_connection_requests_count 2"));
        assert!(page.contains("power_serve_connection_requests_sum 9"));
        let rungs = page
            .lines()
            .filter(|l| l.starts_with("power_serve_connection_requests_bucket{le=\""))
            .count();
        assert_eq!(rungs, CONN_REQUESTS_BINS);
    }

    #[test]
    fn latency_overflow_clamps_into_top_bucket() {
        let m = Metrics::new();
        m.record(Endpoint::Systems, 200, Duration::from_secs(10));
        let page = m.render_prometheus(CacheStats::default(), None, None);
        assert!(page.contains("power_serve_latency_us_count{endpoint=\"systems\"} 1"));
        assert!(page.contains("power_serve_latency_us_sum{endpoint=\"systems\"} 10000000"));
    }
}

//! Endpoint dispatch: parsed request in, response out.
//!
//! The router is a pure function of ([`ServeState`], [`Request`]) so every
//! endpoint is unit-testable without a socket. Endpoints:
//!
//! | method | path               | what it serves                                   |
//! |--------|--------------------|--------------------------------------------------|
//! | POST   | `/v1/measure`      | full EE HPC WG measurement ([`measure_with_store`]) |
//! | POST   | `/v1/sample-size`  | Eq. 5 finite-population plan (Table 5 as a service) |
//! | GET    | `/v1/trace/window` | O(1) prefix-sum window average over a cached sweep |
//! | POST   | `/v1/campaigns`    | register fleet campaigns (optionally a batch)    |
//! | GET    | `/v1/campaigns`    | the fleet roster, filterable by state            |
//! | GET    | `/v1/campaigns/:id`| one campaign's live status                       |
//! | DELETE | `/v1/campaigns/:id`| unregister a campaign                            |
//! | GET    | `/v1/leaderboard`  | live efficiency ranking with confidence intervals |
//! | GET    | `/v1/systems`      | the queryable system catalog                     |
//! | GET    | `/healthz`         | liveness + uptime                                |
//! | GET    | `/metrics`         | Prometheus-style counters and histograms         |
//!
//! Domain errors map to `400` (invalid parameters), `404` (unknown system
//! or path), `405` (wrong method on a known path), `422` (well-formed but
//! unsatisfiable request). Every simulation-backed endpoint goes through
//! the state's shared [`TraceStore`], so repeated and concurrent queries
//! coalesce into single sweeps.
//!
//! The router is connection-agnostic: it never reads or writes
//! `connection:` headers. Keep-alive negotiation, the idle timeout, and
//! the per-connection request cap live in the server's connection loop
//! (`server::handle_connection`), which serializes each response with
//! the connection verdict it has already decided.

use crate::http::{Request, Response};
use crate::json::Json;
use crate::metrics::{Endpoint, FleetGauges};
use crate::state::ServeState;
use power_fleet::{CampaignStatus, FleetCampaignSpec, FleetError, LeaderboardRow};
use power_method::level::Methodology;
use power_method::measure::{measure_with_store, MeasurementPlan, NodeSelection, WindowPlacement};
use power_sim::cluster::Cluster;
use power_sim::engine::{MeterScope, ProductRequest, SimulationConfig};
use power_sim::systems::SystemPreset;
use power_sim::Simulator;
use power_stats::sample_size::SampleSizePlan;
use power_telemetry::online::CiQuantile;

/// Dispatches one request.
pub fn route(state: &ServeState, req: &Request) -> (Endpoint, Response) {
    if let Some(rest) = req.path.strip_prefix("/v1/campaigns/") {
        return (Endpoint::Campaigns, campaign_item(state, req, rest));
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (Endpoint::Healthz, healthz(state)),
        ("GET", "/metrics") => (Endpoint::Metrics, metrics(state)),
        ("GET", "/v1/systems") => (Endpoint::Systems, systems(state)),
        ("POST", "/v1/sample-size") => (Endpoint::SampleSize, sample_size(req)),
        ("POST", "/v1/measure") => (Endpoint::Measure, measure(state, req)),
        ("GET", "/v1/trace/window") => (Endpoint::TraceWindow, trace_window(state, req)),
        ("POST", "/v1/campaigns") => (Endpoint::Campaigns, campaigns_create(state, req)),
        ("GET", "/v1/campaigns") => (Endpoint::Campaigns, campaigns_list(state, req)),
        ("GET", "/v1/leaderboard") => (Endpoint::Leaderboard, leaderboard(state, req)),
        (_, "/healthz") => (Endpoint::Healthz, method_not_allowed("GET")),
        (_, "/metrics") => (Endpoint::Metrics, method_not_allowed("GET")),
        (_, "/v1/systems") => (Endpoint::Systems, method_not_allowed("GET")),
        (_, "/v1/sample-size") => (Endpoint::SampleSize, method_not_allowed("POST")),
        (_, "/v1/measure") => (Endpoint::Measure, method_not_allowed("POST")),
        (_, "/v1/trace/window") => (Endpoint::TraceWindow, method_not_allowed("GET")),
        (_, "/v1/campaigns") => (Endpoint::Campaigns, method_not_allowed("GET, POST")),
        (_, "/v1/leaderboard") => (Endpoint::Leaderboard, method_not_allowed("GET")),
        _ => (
            Endpoint::Other,
            Response::error(404, "no such endpoint; see /v1/systems, /v1/measure, /v1/sample-size, /v1/trace/window, /v1/campaigns, /v1/leaderboard, /healthz, /metrics"),
        ),
    }
}

fn method_not_allowed(allow: &'static str) -> Response {
    Response::error(405, "method not allowed").with_header("allow", allow)
}

fn healthz(state: &ServeState) -> Response {
    Response::json(
        200,
        &Json::object([
            ("status", Json::str("ok")),
            ("uptime_s", Json::num(state.started.elapsed().as_secs_f64())),
            ("systems", Json::num(state.catalog.len() as f64)),
        ]),
    )
}

fn metrics(state: &ServeState) -> Response {
    let archive = state.archive.as_ref().map(|products| {
        let stats = products.stats();
        crate::metrics::ArchiveGauges {
            entries: stats.entries,
            segments: stats.segments,
            live_bytes: stats.live_bytes,
            dead_bytes: stats.dead_bytes,
            warmed: state.warmed as u64,
        }
    });
    let plane = state.fleet.plane_stats();
    let fleet = FleetGauges {
        states: state.fleet.state_counts().map(|(s, c)| (s.label(), c)),
        shards: state.fleet.shards() as u64,
        offered: plane.offered,
        accepted: plane.ingest.accepted,
        late_dropped: plane.ingest.late_dropped,
        backpressure_dropped: plane.ingest.backpressure_dropped,
        duplicates: plane.ingest.duplicates,
        pending: plane.pending,
    };
    Response::text(
        200,
        state
            .metrics
            .render_prometheus(state.store.stats(), archive, Some(fleet)),
    )
}

fn systems(state: &ServeState) -> Response {
    let items: Vec<Json> = state
        .catalog
        .iter()
        .map(|p| {
            let phases = p.workload.workload().phases();
            Json::object([
                ("name", Json::str(p.name)),
                ("total_nodes", Json::num(p.cluster_spec.total_nodes as f64)),
                ("workload", Json::str(p.workload.workload().name())),
                ("core_seconds", Json::num(phases.core())),
                ("run_seconds", Json::num(phases.total())),
                ("scope", Json::str(scope_label(p.scope))),
                ("paper_population", Json::num(p.targets.population as f64)),
            ])
        })
        .collect();
    Response::json(200, &Json::object([("systems", Json::Array(items))]))
}

/// `POST /v1/sample-size` — Eq. 4/5: how many nodes must a site meter.
fn sample_size(req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let confidence = match opt_f64(&body, "confidence") {
        Ok(v) => v.unwrap_or(0.95),
        Err(r) => return r,
    };
    let lambda = match req_f64(&body, "lambda") {
        Ok(v) => v,
        Err(r) => return r,
    };
    let cv = match req_f64(&body, "cv") {
        Ok(v) => v,
        Err(r) => return r,
    };
    let population = match req_u64(&body, "population") {
        Ok(v) => v,
        Err(r) => return r,
    };
    let plan = match SampleSizePlan::new(confidence, lambda, cv) {
        Ok(p) => p,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    let (n0, n_inf, n) = match plan.n0().and_then(|n0| {
        Ok((
            n0,
            plan.required_nodes_infinite()?,
            plan.required_nodes(population)?,
        ))
    }) {
        Ok(v) => v,
        Err(e) => return Response::error(422, &e.to_string()),
    };
    let achieved = plan.achieved_lambda(n, population).ok();
    Response::json(
        200,
        &Json::object([
            ("confidence", Json::num(plan.confidence())),
            ("lambda", Json::num(plan.lambda())),
            ("cv", Json::num(plan.cv())),
            ("population", Json::num(population as f64)),
            ("n0", Json::num(n0)),
            ("required_nodes_infinite", Json::num(n_inf as f64)),
            ("required_nodes", Json::num(n as f64)),
            ("achieved_lambda", achieved.map_or(Json::Null, Json::num)),
        ]),
    )
}

/// The simulation identity a request selects: a (scaled) preset plus the
/// engine configuration. Shared by `/v1/measure` and `/v1/trace/window`.
struct SimSelection {
    preset: SystemPreset,
    config: SimulationConfig,
}

fn select_sim(
    state: &ServeState,
    system: &str,
    nodes: Option<u64>,
    dt: Option<f64>,
    seed: u64,
) -> Result<SimSelection, Response> {
    let preset = state.preset(system).ok_or_else(|| {
        Response::error(
            404,
            &format!("unknown system `{system}`; GET /v1/systems lists the catalog"),
        )
    })?;
    let full = preset.cluster_spec.total_nodes;
    let nodes = match nodes {
        Some(0) => return Err(Response::error(400, "nodes must be positive")),
        Some(n) if n as usize > state.config.max_nodes => {
            return Err(Response::error(
                400,
                &format!(
                    "nodes = {n} exceeds the service limit of {}",
                    state.config.max_nodes
                ),
            ))
        }
        Some(n) => (n as usize).min(full),
        None => full.min(state.config.max_nodes),
    };
    let preset = preset.clone().with_total_nodes(nodes);
    let total_s = preset.workload.workload().phases().total();
    let dt = match dt {
        Some(v) if !(v.is_finite() && v > 0.0) => {
            return Err(Response::error(
                400,
                "dt must be a positive number of seconds",
            ))
        }
        Some(v) => v,
        // Default: ~512 samples across the run, never finer than 1 Hz.
        None => (total_s / 512.0).max(1.0),
    };
    let steps = (total_s / dt).ceil().max(1.0);
    let cells = steps * nodes as f64;
    if cells > state.config.max_cells as f64 {
        return Err(Response::error(
            422,
            &format!(
                "request would sweep {cells:.0} node-samples (limit {}); raise dt or lower nodes",
                state.config.max_cells
            ),
        ));
    }
    let config = SimulationConfig {
        dt,
        noise_sigma: state.config.noise_sigma,
        common_noise_sigma: state.config.common_noise_sigma,
        seed,
        threads: state.config.sim_threads.max(1),
    };
    Ok(SimSelection { preset, config })
}

/// `POST /v1/measure` — the full methodology pipeline as a service.
fn measure(state: &ServeState, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let system = match req_str(&body, "system") {
        Ok(s) => s,
        Err(r) => return r,
    };
    let methodology = match body.get("methodology").map(|m| m.as_str()) {
        None => Methodology::Revised,
        Some(Some(name)) => match parse_methodology(name) {
            Some(m) => m,
            None => {
                return Response::error(
                    400,
                    "methodology must be one of level1, level2, level3, revised",
                )
            }
        },
        Some(None) => return Response::error(400, "methodology must be a string"),
    };
    let selection = match body.get("selection").map(|s| s.as_str()) {
        None => NodeSelection::Random,
        Some(Some("random")) => NodeSelection::Random,
        Some(Some("first_n")) => NodeSelection::FirstN,
        Some(Some("lowest_vid")) => NodeSelection::LowestVid,
        _ => return Response::error(400, "selection must be one of random, first_n, lowest_vid"),
    };
    let placement = match body.get("placement") {
        None => WindowPlacement::Middle,
        Some(p) => match (p.as_str(), p.as_f64()) {
            (Some("earliest"), _) => WindowPlacement::Earliest,
            (Some("middle"), _) => WindowPlacement::Middle,
            (Some("latest"), _) => WindowPlacement::Latest,
            (None, Some(f)) if (0.0..=1.0).contains(&f) => WindowPlacement::Fraction(f),
            _ => {
                return Response::error(
                    400,
                    "placement must be earliest, middle, latest, or a fraction in [0, 1]",
                )
            }
        },
    };
    let seed = match opt_u64(&body, "seed") {
        Ok(v) => v.unwrap_or(1),
        Err(r) => return r,
    };
    let nodes = match opt_u64(&body, "nodes") {
        Ok(v) => v,
        Err(r) => return r,
    };
    let dt = match opt_f64(&body, "dt") {
        Ok(v) => v,
        Err(r) => return r,
    };
    let selection_sim = match select_sim(state, system, nodes, dt, seed) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let cluster = match Cluster::build(selection_sim.preset.cluster_spec.clone()) {
        Ok(c) => c,
        Err(e) => return Response::error(422, &e.to_string()),
    };
    let plan = MeasurementPlan {
        selection,
        placement,
        ..MeasurementPlan::honest(methodology, seed)
    };
    let measurement = match measure_with_store(
        &state.store,
        &cluster,
        selection_sim.preset.workload.workload(),
        selection_sim.preset.balance,
        selection_sim.config,
        &plan,
    ) {
        Ok(m) => m,
        Err(e) => return Response::error(422, &e.to_string()),
    };

    let windows: Vec<Json> = measurement
        .windows
        .iter()
        .map(|&(from, to)| Json::Array(vec![Json::num(from), Json::num(to)]))
        .collect();
    let mut members = vec![
        ("system", Json::str(selection_sim.preset.name)),
        ("methodology", Json::str(methodology_label(methodology))),
        ("total_nodes", Json::num(measurement.total_nodes as f64)),
        (
            "metered_nodes",
            Json::num(measurement.metered_nodes.len() as f64),
        ),
        (
            "machine_fraction",
            Json::num(measurement.machine_fraction()),
        ),
        ("windows", Json::Array(windows)),
        ("subset_power_w", Json::num(measurement.subset_power_w)),
        ("overhead_w", Json::num(measurement.overhead_w)),
        ("reported_power_w", Json::num(measurement.reported_power_w)),
        ("rmax_flops", Json::num(measurement.rmax_flops)),
        ("flops_per_watt", Json::num(measurement.flops_per_watt())),
        ("dt", Json::num(selection_sim.config.dt)),
        ("seed", Json::num(seed as f64)),
    ];
    if measurement.metered_nodes.len() <= 128 {
        members.push((
            "metered_node_ids",
            Json::Array(
                measurement
                    .metered_nodes
                    .iter()
                    .map(|&id| Json::num(id as f64))
                    .collect(),
            ),
        ));
    }
    if let Some(a) = &measurement.assessment {
        members.push((
            "assessment",
            Json::object([
                ("estimate_w", Json::num(a.estimate_w)),
                ("ci_lower_w", Json::num(a.ci_lower_w)),
                ("ci_upper_w", Json::num(a.ci_upper_w)),
                ("confidence", Json::num(a.confidence)),
                ("relative_accuracy", Json::num(a.relative_accuracy)),
                ("cv", Json::num(a.cv)),
            ]),
        ));
    }
    Response::json(200, &Json::object(members))
}

/// `GET /v1/trace/window` — O(1) window averages over the cached sweep.
fn trace_window(state: &ServeState, req: &Request) -> Response {
    let system = match req.query_param("system") {
        Some(s) => s,
        None => return Response::error(400, "missing required query parameter `system`"),
    };
    let from = match parse_query_f64(req, "from") {
        Ok(Some(v)) => v,
        Ok(None) => return Response::error(400, "missing required query parameter `from`"),
        Err(r) => return r,
    };
    let to = match parse_query_f64(req, "to") {
        Ok(Some(v)) => v,
        Ok(None) => return Response::error(400, "missing required query parameter `to`"),
        Err(r) => return r,
    };
    let scope = match req.query_param("scope") {
        None => MeterScope::Wall,
        Some(s) => match parse_scope(s) {
            Some(s) => s,
            None => return Response::error(400, "scope must be one of wall, dc, processors"),
        },
    };
    let nodes = match parse_query_u64(req, "nodes") {
        Ok(v) => v,
        Err(r) => return r,
    };
    let dt = match parse_query_f64(req, "dt") {
        Ok(v) => v,
        Err(r) => return r,
    };
    let seed = match parse_query_u64(req, "seed") {
        Ok(v) => v.unwrap_or(1),
        Err(r) => return r,
    };
    let selection = match select_sim(state, system, nodes, dt, seed) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let cluster = match Cluster::build(selection.preset.cluster_spec.clone()) {
        Ok(c) => c,
        Err(e) => return Response::error(422, &e.to_string()),
    };
    let sim = match Simulator::new(
        &cluster,
        selection.preset.workload.workload(),
        selection.preset.balance,
        selection.config,
    ) {
        Ok(s) => s,
        Err(e) => return Response::error(422, &e.to_string()),
    };
    // Fast path: a memory-cached trace or the archive tier's pruned
    // scan answers the window without materializing full products —
    // cold queries touch block headers plus at most two boundary
    // blocks on disk. Both paths share the window-semantics contract
    // (`power_sim::trace::window_span`), so answers and error strings
    // are interchangeable with the decoded path below.
    let (average_w, energy_j, dt, samples, run_seconds) =
        match state.store.window_aggregate(&sim, scope, from, to) {
            Some(Ok(agg)) => (
                agg.average_w,
                agg.energy_j,
                agg.dt,
                agg.steps as f64,
                agg.t_end(),
            ),
            Some(Err(e)) => return Response::error(400, &e.to_string()),
            None => {
                // Decoded path: simulate (or fetch + decode) the full
                // products, then answer off in-memory prefix sums.
                let products = match state.store.products(&sim, &ProductRequest::system_only()) {
                    Ok(p) => p,
                    Err(e) => return Response::error(422, &e.to_string()),
                };
                let trace = products
                    .system_trace(scope)
                    .expect("system trace was requested");
                match trace
                    .window_average(from, to)
                    .and_then(|avg| Ok((avg, trace.window_energy(from, to)?)))
                {
                    Ok((avg, energy)) => (
                        avg,
                        energy,
                        products.dt(),
                        products.steps() as f64,
                        trace.t_end(),
                    ),
                    Err(e) => return Response::error(400, &e.to_string()),
                }
            }
        };
    Response::json(
        200,
        &Json::object([
            ("system", Json::str(selection.preset.name)),
            (
                "nodes",
                Json::num(selection.preset.cluster_spec.total_nodes as f64),
            ),
            ("scope", Json::str(scope_label(scope))),
            ("from", Json::num(from)),
            ("to", Json::num(to)),
            ("average_w", Json::num(average_w)),
            ("energy_j", Json::num(energy_j)),
            ("dt", Json::num(dt)),
            ("samples", Json::num(samples)),
            ("run_seconds", Json::num(run_seconds)),
        ]),
    )
}

// ---- campaign fleet endpoints -------------------------------------------

/// Maps a fleet error onto the service's status-code conventions.
fn fleet_error_response(err: FleetError) -> Response {
    match err {
        FleetError::InvalidSpec { .. } => Response::error(400, &err.to_string()),
        FleetError::Capacity { .. } => Response::error(429, &err.to_string()),
        FleetError::UnknownCampaign { id } => {
            Response::error(404, &format!("campaign {id} is not registered"))
        }
        other => Response::error(500, &other.to_string()),
    }
}

/// Parses a campaign spec from a request body, starting from defaults.
fn parse_campaign_spec(body: &Json) -> Result<FleetCampaignSpec, Response> {
    let mut spec = FleetCampaignSpec::default();
    if let Some(name) = body.get("name") {
        spec.name = name
            .as_str()
            .ok_or_else(|| Response::error(400, "field `name` must be a string"))?
            .to_string();
    }
    if let Some(v) = opt_u64(body, "population")? {
        spec.population = v;
    }
    if let Some(v) = opt_f64(body, "mean_node_w")? {
        spec.mean_node_w = v;
    }
    if let Some(v) = opt_f64(body, "cv")? {
        spec.cv = v;
    }
    if let Some(v) = opt_f64(body, "noise_sigma")? {
        spec.noise_sigma = v;
    }
    if let Some(v) = opt_f64(body, "confidence")? {
        spec.confidence = v;
    }
    if let Some(v) = opt_f64(body, "lambda")? {
        spec.lambda = v;
    }
    match body.get("quantile").map(|q| q.as_str()) {
        None => {}
        Some(Some("normal" | "z")) => spec.quantile = CiQuantile::Normal,
        Some(Some("t" | "student_t")) => spec.quantile = CiQuantile::StudentT,
        _ => return Err(Response::error(400, "quantile must be `normal` or `t`")),
    }
    match body.get("empirical_cv") {
        None => {}
        Some(v) => {
            spec.empirical_cv = v
                .as_bool()
                .ok_or_else(|| Response::error(400, "field `empirical_cv` must be a boolean"))?;
        }
    }
    match body.get("methodology").map(|m| m.as_str()) {
        None => {}
        Some(Some(name)) => match parse_methodology(name) {
            Some(m) => spec.level = m,
            None => {
                return Err(Response::error(
                    400,
                    "methodology must be one of level1, level2, level3, revised",
                ))
            }
        },
        Some(None) => return Err(Response::error(400, "methodology must be a string")),
    }
    if let Some(v) = opt_u64(body, "samples_per_node")? {
        spec.samples_per_node = u32::try_from(v)
            .map_err(|_| Response::error(400, "samples_per_node is out of range"))?;
    }
    if let Some(v) = opt_f64(body, "gflops_per_node")? {
        spec.gflops_per_node = v;
    }
    if let Some(v) = opt_u64(body, "lateness")? {
        spec.lateness = v;
    }
    if let Some(v) = opt_u64(body, "max_nodes")? {
        spec.max_nodes = v;
    }
    if let Some(v) = opt_u64(body, "seed")? {
        spec.seed = v;
    }
    Ok(spec)
}

/// `POST /v1/campaigns` — register one campaign (or, with `count`, a
/// batch sharing the spec with per-campaign seeds) and start metering.
fn campaigns_create(state: &ServeState, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let spec = match parse_campaign_spec(&body) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let count = match opt_u64(&body, "count") {
        Ok(v) => v.unwrap_or(1),
        Err(r) => return r,
    };
    if count == 0 || count > 100_000 {
        return Response::error(400, "count must be between 1 and 100000");
    }
    if count == 1 {
        return match state.fleet.create(spec) {
            Ok(id) => {
                let status = state.fleet.status(id).expect("campaign just created");
                Response::json(201, &campaign_json(&status))
            }
            Err(e) => fleet_error_response(e),
        };
    }
    // Batch mode: same spec, distinct seeds and name suffixes so every
    // submission measures a different machine from the same family.
    let base_name = spec.name.clone();
    let mut ids = Vec::with_capacity(count as usize);
    for i in 0..count {
        let mut one = spec.clone();
        one.seed = spec.seed.wrapping_add(i);
        if !base_name.is_empty() {
            one.name = format!("{base_name}-{i}");
        }
        match state.fleet.create(one) {
            Ok(id) => ids.push(id),
            Err(e) => {
                // Partial creation is still reported: the caller gets
                // what was registered plus why the batch stopped.
                let mut members = vec![
                    ("created", Json::num(ids.len() as f64)),
                    ("requested", Json::num(count as f64)),
                    (
                        "ids",
                        Json::Array(ids.iter().map(|&id| Json::num(id as f64)).collect()),
                    ),
                    ("error", Json::str(e.to_string())),
                ];
                let status = match e {
                    FleetError::Capacity { .. } => 429,
                    FleetError::InvalidSpec { .. } => 400,
                    _ => 500,
                };
                members.retain(|(k, _)| *k != "ids" || ids.len() <= 10_000);
                return Response::json(status, &Json::object(members));
            }
        }
    }
    Response::json(
        201,
        &Json::object([
            ("created", Json::num(ids.len() as f64)),
            (
                "ids",
                Json::Array(ids.iter().map(|&id| Json::num(id as f64)).collect()),
            ),
        ]),
    )
}

/// `GET /v1/campaigns` — the fleet roster, optionally filtered by state.
fn campaigns_list(state: &ServeState, req: &Request) -> Response {
    let state_filter = match req.query_param("state") {
        None => None,
        Some(label) => {
            match power_fleet::CampaignState::ALL
                .iter()
                .find(|s| s.label() == label)
            {
                Some(s) => Some(*s),
                None => {
                    return Response::error(
                        400,
                        "state must be one of live, stopped, exhausted, failed",
                    )
                }
            }
        }
    };
    let limit = match parse_query_u64(req, "limit") {
        Ok(v) => v.unwrap_or(1000) as usize,
        Err(r) => return r,
    };
    let all = state.fleet.list();
    let total = all.len();
    let items: Vec<Json> = all
        .iter()
        .filter(|c| state_filter.is_none_or(|f| c.state == f))
        .take(limit)
        .map(campaign_summary_json)
        .collect();
    Response::json(
        200,
        &Json::object([
            ("total", Json::num(total as f64)),
            ("returned", Json::num(items.len() as f64)),
            ("campaigns", Json::Array(items)),
        ]),
    )
}

/// `GET|DELETE /v1/campaigns/:id`.
fn campaign_item(state: &ServeState, req: &Request, rest: &str) -> Response {
    let id: u64 = match rest.parse() {
        Ok(id) => id,
        Err(_) => return Response::error(404, "campaign ids are non-negative integers"),
    };
    match req.method.as_str() {
        "GET" => match state.fleet.status(id) {
            Some(status) => Response::json(200, &campaign_json(&status)),
            None => Response::error(404, &format!("campaign {id} is not registered")),
        },
        "DELETE" => match state.fleet.delete(id) {
            Ok(true) => Response::json(200, &Json::object([("deleted", Json::num(id as f64))])),
            Ok(false) => Response::error(404, &format!("campaign {id} is not registered")),
            Err(e) => fleet_error_response(e),
        },
        _ => method_not_allowed("GET, DELETE"),
    }
}

/// `GET /v1/leaderboard` — live Green500-style ranking with CIs.
fn leaderboard(state: &ServeState, req: &Request) -> Response {
    let limit = match parse_query_u64(req, "limit") {
        Ok(v) => v.unwrap_or(100) as usize,
        Err(r) => return r,
    };
    let rows: Vec<Json> = state
        .fleet
        .leaderboard(limit)
        .iter()
        .map(leaderboard_row_json)
        .collect();
    Response::json(
        200,
        &Json::object([
            ("campaigns", Json::num(state.fleet.campaign_count() as f64)),
            ("live", Json::num(state.fleet.live_count() as f64)),
            ("rows", Json::Array(rows)),
        ]),
    )
}

fn opt_num(v: Option<f64>) -> Json {
    v.map_or(Json::Null, Json::num)
}

fn campaign_summary_json(status: &CampaignStatus) -> Json {
    Json::object([
        ("id", Json::num(status.id as f64)),
        ("name", Json::str(status.spec.name.clone())),
        ("state", Json::str(status.state.label())),
        ("metered_nodes", Json::num(status.metered_nodes as f64)),
        ("budget", Json::num(status.budget as f64)),
        ("gflops_per_w", opt_num(status.gflops_per_w())),
    ])
}

fn campaign_json(status: &CampaignStatus) -> Json {
    let spec = &status.spec;
    let mut members = vec![
        ("id", Json::num(status.id as f64)),
        ("name", Json::str(spec.name.clone())),
        ("state", Json::str(status.state.label())),
        ("methodology", Json::str(methodology_label(spec.level))),
        ("population", Json::num(spec.population as f64)),
        ("budget", Json::num(status.budget as f64)),
        ("metered_nodes", Json::num(status.metered_nodes as f64)),
        ("resumed_nodes", Json::num(status.resumed_nodes as f64)),
        ("samples_per_node", Json::num(spec.samples_per_node as f64)),
        ("confidence", Json::num(spec.confidence)),
        ("lambda", Json::num(spec.lambda)),
        ("rmax_gflops", Json::num(spec.rmax_gflops())),
        ("mean_node_w", opt_num(status.mean_node_w)),
        ("power_w", opt_num(status.power_w())),
        ("gflops_per_w", opt_num(status.gflops_per_w())),
        ("relative_accuracy", opt_num(status.relative_accuracy)),
        (
            "ci_node_w",
            status.ci_node_w.as_ref().map_or(Json::Null, |ci| {
                Json::Array(vec![Json::num(ci.lower()), Json::num(ci.upper())])
            }),
        ),
    ];
    if let Some((ingest, offered)) = &status.ingest {
        members.push((
            "ingest",
            Json::object([
                ("offered", Json::num(*offered as f64)),
                ("accepted", Json::num(ingest.accepted as f64)),
                ("late_dropped", Json::num(ingest.late_dropped as f64)),
                (
                    "backpressure_dropped",
                    Json::num(ingest.backpressure_dropped as f64),
                ),
                ("duplicates", Json::num(ingest.duplicates as f64)),
            ]),
        ));
    }
    if let Some(err) = &status.error {
        members.push(("error", Json::str(err.clone())));
    }
    Json::object(members)
}

fn leaderboard_row_json(row: &LeaderboardRow) -> Json {
    Json::object([
        ("rank", Json::num(row.rank as f64)),
        ("id", Json::num(row.id as f64)),
        ("name", Json::str(row.name.clone())),
        ("methodology", Json::str(methodology_label(row.level))),
        ("state", Json::str(row.state.label())),
        ("population", Json::num(row.population as f64)),
        ("metered_nodes", Json::num(row.metered_nodes as f64)),
        ("rmax_gflops", Json::num(row.rmax_gflops)),
        ("power_w", Json::num(row.power_w)),
        ("gflops_per_w", Json::num(row.gflops_per_w)),
        (
            "ci_gflops_per_w",
            row.ci_gflops_per_w.map_or(Json::Null, |(lo, hi)| {
                Json::Array(vec![Json::num(lo), Json::num(hi)])
            }),
        ),
        ("relative_accuracy", opt_num(row.relative_accuracy)),
    ])
}

// ---- small parsing helpers ----------------------------------------------

fn parse_body(req: &Request) -> Result<Json, Response> {
    let text = req
        .body_utf8()
        .map_err(|e| Response::error(400, e.detail()))?;
    if text.trim().is_empty() {
        return Err(Response::error(400, "request body must be a JSON object"));
    }
    let body = Json::parse(text).map_err(|e| Response::error(400, &e.to_string()))?;
    match body {
        Json::Object(_) => Ok(body),
        _ => Err(Response::error(400, "request body must be a JSON object")),
    }
}

fn req_f64(body: &Json, key: &str) -> Result<f64, Response> {
    opt_f64(body, key)?
        .ok_or_else(|| Response::error(400, &format!("missing required field `{key}`")))
}

fn opt_f64(body: &Json, key: &str) -> Result<Option<f64>, Response> {
    match body.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| Response::error(400, &format!("field `{key}` must be a finite number"))),
    }
}

fn req_u64(body: &Json, key: &str) -> Result<u64, Response> {
    opt_u64(body, key)?
        .ok_or_else(|| Response::error(400, &format!("missing required field `{key}`")))
}

fn opt_u64(body: &Json, key: &str) -> Result<Option<u64>, Response> {
    match body.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            Response::error(
                400,
                &format!("field `{key}` must be a non-negative integer"),
            )
        }),
    }
}

fn req_str<'a>(body: &'a Json, key: &str) -> Result<&'a str, Response> {
    match body.get(key) {
        Some(v) => v
            .as_str()
            .ok_or_else(|| Response::error(400, &format!("field `{key}` must be a string"))),
        None => Err(Response::error(
            400,
            &format!("missing required field `{key}`"),
        )),
    }
}

fn parse_query_f64(req: &Request, key: &str) -> Result<Option<f64>, Response> {
    match req.query_param(key) {
        None => Ok(None),
        Some(raw) => raw
            .parse::<f64>()
            .ok()
            .filter(|v| v.is_finite())
            .map(Some)
            .ok_or_else(|| {
                Response::error(
                    400,
                    &format!("query parameter `{key}` must be a finite number"),
                )
            }),
    }
}

fn parse_query_u64(req: &Request, key: &str) -> Result<Option<u64>, Response> {
    match req.query_param(key) {
        None => Ok(None),
        Some(raw) => raw.parse::<u64>().map(Some).map_err(|_| {
            Response::error(
                400,
                &format!("query parameter `{key}` must be a non-negative integer"),
            )
        }),
    }
}

fn parse_methodology(name: &str) -> Option<Methodology> {
    match name.to_ascii_lowercase().as_str() {
        "level1" | "l1" => Some(Methodology::Level1),
        "level2" | "l2" => Some(Methodology::Level2),
        "level3" | "l3" => Some(Methodology::Level3),
        "revised" => Some(Methodology::Revised),
        _ => None,
    }
}

fn methodology_label(m: Methodology) -> &'static str {
    match m {
        Methodology::Level1 => "level1",
        Methodology::Level2 => "level2",
        Methodology::Level3 => "level3",
        Methodology::Revised => "revised",
    }
}

fn parse_scope(name: &str) -> Option<MeterScope> {
    match name.to_ascii_lowercase().as_str() {
        "wall" => Some(MeterScope::Wall),
        "dc" => Some(MeterScope::Dc),
        "processors" | "processors_only" => Some(MeterScope::ProcessorsOnly),
        _ => None,
    }
}

fn scope_label(scope: MeterScope) -> &'static str {
    match scope {
        MeterScope::Wall => "wall",
        MeterScope::Dc => "dc",
        MeterScope::ProcessorsOnly => "processors",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{ServeConfig, ServeState};

    fn get(path: &str) -> Request {
        let raw = format!("GET {path} HTTP/1.1\r\n\r\n");
        crate::http::read_request(
            &mut std::io::Cursor::new(raw.into_bytes()),
            &crate::http::HttpLimits::default(),
        )
        .unwrap()
        .unwrap()
    }

    fn post(path: &str, body: &str) -> Request {
        let raw = format!(
            "POST {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        crate::http::read_request(
            &mut std::io::Cursor::new(raw.into_bytes()),
            &crate::http::HttpLimits::default(),
        )
        .unwrap()
        .unwrap()
    }

    fn state() -> ServeState {
        ServeState::new(ServeConfig {
            max_nodes: 64,
            ..ServeConfig::default()
        })
    }

    fn body_json(resp: &Response) -> Json {
        Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap()
    }

    #[test]
    fn healthz_and_systems() {
        let state = state();
        let (ep, resp) = route(&state, &get("/healthz"));
        assert_eq!(ep, Endpoint::Healthz);
        assert_eq!(resp.status, 200);
        assert_eq!(body_json(&resp).get("status").unwrap().as_str(), Some("ok"));

        let (_, resp) = route(&state, &get("/v1/systems"));
        let systems = body_json(&resp);
        assert_eq!(
            systems.get("systems").unwrap().as_array().unwrap().len(),
            10
        );
    }

    #[test]
    fn sample_size_matches_table5_cell() {
        let state = state();
        let (_, resp) = route(
            &state,
            &post(
                "/v1/sample-size",
                r#"{"lambda": 0.005, "cv": 0.05, "population": 10000}"#,
            ),
        );
        assert_eq!(resp.status, 200, "{:?}", resp.body);
        let body = body_json(&resp);
        // The paper's Table 5: lambda 0.5%, cv 5%, N = 10 000 -> 370.
        assert_eq!(body.get("required_nodes").unwrap().as_u64(), Some(370));
        assert_eq!(body.get("confidence").unwrap().as_f64(), Some(0.95));
    }

    #[test]
    fn sample_size_rejects_bad_parameters() {
        let state = state();
        for body in [
            r#"{"cv": 0.05, "population": 100}"#,
            r#"{"lambda": 0.01, "population": 100}"#,
            r#"{"lambda": 0.01, "cv": 0.05}"#,
            r#"{"lambda": -1, "cv": 0.05, "population": 100}"#,
            r#"{"lambda": 0.01, "cv": 0.05, "population": 0.5}"#,
            r#"not json"#,
            r#"[1,2]"#,
        ] {
            let (_, resp) = route(&state, &post("/v1/sample-size", body));
            assert_eq!(resp.status, 400, "{body}");
        }
        // population = 0 is well-formed but unsatisfiable.
        let (_, resp) = route(
            &state,
            &post(
                "/v1/sample-size",
                r#"{"lambda": 0.01, "cv": 0.05, "population": 0}"#,
            ),
        );
        assert_eq!(resp.status, 422);
    }

    #[test]
    fn measure_runs_end_to_end_and_caches() {
        let state = state();
        let body =
            r#"{"system": "L-CSC", "methodology": "revised", "nodes": 24, "dt": 60, "seed": 7}"#;
        let (ep, resp) = route(&state, &post("/v1/measure", body));
        assert_eq!(ep, Endpoint::Measure);
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let m = body_json(&resp);
        assert_eq!(m.get("total_nodes").unwrap().as_u64(), Some(24));
        // Revised rule on 24 nodes: max(16, 10%) = 16.
        assert_eq!(m.get("metered_nodes").unwrap().as_u64(), Some(16));
        assert!(m.get("reported_power_w").unwrap().as_f64().unwrap() > 0.0);
        assert!(m.get("assessment").is_some());
        assert_eq!(state.store.misses(), 1);

        // The identical request is served from cache: no second sweep.
        let (_, resp2) = route(&state, &post("/v1/measure", body));
        assert_eq!(resp2.status, 200);
        assert_eq!(state.store.misses(), 1);
        assert!(state.store.hits() >= 1);
    }

    #[test]
    fn measure_validates_inputs() {
        let state = state();
        for (body, status) in [
            (r#"{"methodology": "revised"}"#, 400),
            (r#"{"system": "No Such Machine"}"#, 404),
            (r#"{"system": "L-CSC", "methodology": "level9"}"#, 400),
            (r#"{"system": "L-CSC", "nodes": 0}"#, 400),
            (r#"{"system": "L-CSC", "nodes": 100000}"#, 400),
            (r#"{"system": "L-CSC", "dt": -3}"#, 400),
            (r#"{"system": "L-CSC", "nodes": 24, "dt": 0.001}"#, 422),
            (r#"{"system": "L-CSC", "selection": "best_nodes"}"#, 400),
            (r#"{"system": "L-CSC", "placement": 7}"#, 400),
        ] {
            let (_, resp) = route(&state, &post("/v1/measure", body));
            assert_eq!(
                resp.status,
                status,
                "{body}: {}",
                String::from_utf8_lossy(&resp.body)
            );
        }
        // Nothing invalid was simulated or cached.
        assert_eq!(state.store.misses(), 0);
    }

    #[test]
    fn trace_window_is_cached_and_o1_on_repeat() {
        let state = state();
        let path = "/v1/trace/window?system=Colosse&nodes=16&dt=120&from=1200&to=4800";
        let (ep, resp) = route(&state, &get(path));
        assert_eq!(ep, Endpoint::TraceWindow);
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let body = body_json(&resp);
        let avg = body.get("average_w").unwrap().as_f64().unwrap();
        assert!(avg > 0.0);
        // Energy over the window is consistent with the average.
        let energy = body.get("energy_j").unwrap().as_f64().unwrap();
        assert!((energy - avg * 3600.0).abs() <= 1e-6 * energy.abs());
        assert_eq!(state.store.misses(), 1);

        // A different window over the same sweep: pure cache hit.
        let (_, resp2) = route(
            &state,
            &get("/v1/trace/window?system=Colosse&nodes=16&dt=120&from=0&to=600"),
        );
        assert_eq!(resp2.status, 200);
        assert_eq!(state.store.misses(), 1, "window change must not re-sweep");

        // Scope selection works against the same cached products.
        let (_, resp3) = route(
            &state,
            &get("/v1/trace/window?system=Colosse&nodes=16&dt=120&from=1200&to=4800&scope=dc"),
        );
        let dc = body_json(&resp3)
            .get("average_w")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(dc < avg, "DC power sits below wall power");
        assert_eq!(state.store.misses(), 1);
    }

    #[test]
    fn trace_window_validates_inputs() {
        let state = state();
        for path in [
            "/v1/trace/window",
            "/v1/trace/window?system=Colosse",
            "/v1/trace/window?system=Colosse&from=10",
            "/v1/trace/window?system=Colosse&from=ten&to=20",
            "/v1/trace/window?system=Colosse&from=10&to=20&scope=psu",
            "/v1/trace/window?system=Colosse&nodes=16&dt=120&from=500&to=100",
        ] {
            let (_, resp) = route(&state, &get(path));
            assert_eq!(resp.status, 400, "{path}");
        }
        let (_, resp) = route(&state, &get("/v1/trace/window?system=Nope&from=0&to=10"));
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn unknown_paths_and_wrong_methods() {
        let state = state();
        let (ep, resp) = route(&state, &get("/v2/everything"));
        assert_eq!(ep, Endpoint::Other);
        assert_eq!(resp.status, 404);
        let (ep, resp) = route(&state, &post("/healthz", "{}"));
        assert_eq!(ep, Endpoint::Healthz);
        assert_eq!(resp.status, 405);
        let (_, resp) = route(&state, &get("/v1/measure"));
        assert_eq!(resp.status, 405);
    }

    fn delete(path: &str) -> Request {
        let raw = format!("DELETE {path} HTTP/1.1\r\n\r\n");
        crate::http::read_request(
            &mut std::io::Cursor::new(raw.into_bytes()),
            &crate::http::HttpLimits::default(),
        )
        .unwrap()
        .unwrap()
    }

    #[test]
    fn campaign_crud_over_http() {
        let state = state();
        let (ep, resp) = route(
            &state,
            &post(
                "/v1/campaigns",
                r#"{"name": "crud", "population": 64, "samples_per_node": 8, "seed": 7}"#,
            ),
        );
        assert_eq!(ep, Endpoint::Campaigns);
        assert_eq!(resp.status, 201, "{}", String::from_utf8_lossy(&resp.body));
        let created = body_json(&resp);
        let id = created.get("id").unwrap().as_u64().unwrap();
        assert_eq!(created.get("state").unwrap().as_str(), Some("live"));
        assert_eq!(created.get("population").unwrap().as_u64(), Some(64));

        // Router-test states carry no driver; advance the fleet by hand.
        state.fleet.drive_until_idle();

        let (ep, resp) = route(&state, &get(&format!("/v1/campaigns/{id}")));
        assert_eq!(ep, Endpoint::Campaigns);
        assert_eq!(resp.status, 200);
        let status = body_json(&resp);
        assert_eq!(status.get("state").unwrap().as_str(), Some("stopped"));
        assert!(status.get("gflops_per_w").unwrap().as_f64().unwrap() > 0.0);
        let ci = status.get("ci_node_w").unwrap().as_array().unwrap();
        let mean = status.get("mean_node_w").unwrap().as_f64().unwrap();
        assert!(ci[0].as_f64().unwrap() <= mean && mean <= ci[1].as_f64().unwrap());

        let (_, resp) = route(&state, &get("/v1/campaigns?state=stopped"));
        let list = body_json(&resp);
        assert_eq!(list.get("total").unwrap().as_u64(), Some(1));
        assert_eq!(list.get("returned").unwrap().as_u64(), Some(1));

        let (_, resp) = route(&state, &delete(&format!("/v1/campaigns/{id}")));
        assert_eq!(resp.status, 200);
        assert_eq!(body_json(&resp).get("deleted").unwrap().as_u64(), Some(id));
        let (_, resp) = route(&state, &get(&format!("/v1/campaigns/{id}")));
        assert_eq!(resp.status, 404);
        let (_, resp) = route(&state, &delete(&format!("/v1/campaigns/{id}")));
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn campaign_validation_batching_and_methods() {
        let state = state();
        for body in [
            r#"{"population": 0}"#,
            r#"{"cv": -0.5}"#,
            r#"{"lambda": 0}"#,
            r#"{"quantile": "cauchy"}"#,
            r#"{"methodology": "L9"}"#,
            r#"{"count": 0}"#,
            r#"not json"#,
        ] {
            let (_, resp) = route(&state, &post("/v1/campaigns", body));
            assert_eq!(resp.status, 400, "{body}");
        }

        let (_, resp) = route(
            &state,
            &post(
                "/v1/campaigns",
                r#"{"name": "batch", "population": 32, "samples_per_node": 4, "count": 5}"#,
            ),
        );
        assert_eq!(resp.status, 201, "{}", String::from_utf8_lossy(&resp.body));
        let batch = body_json(&resp);
        assert_eq!(batch.get("created").unwrap().as_u64(), Some(5));
        assert_eq!(batch.get("ids").unwrap().as_array().unwrap().len(), 5);

        let (_, resp) = route(&state, &get("/v1/campaigns/not-a-number"));
        assert_eq!(resp.status, 404);
        let (_, resp) = route(&state, &delete("/v1/campaigns"));
        assert_eq!(resp.status, 405);
        let (_, resp) = route(&state, &post("/v1/leaderboard", "{}"));
        assert_eq!(resp.status, 405);
        let (_, resp) = route(&state, &get("/v1/campaigns?state=nope"));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn leaderboard_ranks_by_efficiency_and_metrics_stay_bounded() {
        let state = state();
        // Three machines at different node powers: efficiency orders
        // them inversely (same Rmax per node).
        for (name, watts) in [("hot", 500.0), ("warm", 400.0), ("cool", 300.0)] {
            let body = format!(
                r#"{{"name": "{name}", "population": 48, "mean_node_w": {watts},
                     "samples_per_node": 8, "seed": 3}}"#
            );
            let (_, resp) = route(&state, &post("/v1/campaigns", &body));
            assert_eq!(resp.status, 201);
        }
        state.fleet.drive_until_idle();

        let (ep, resp) = route(&state, &get("/v1/leaderboard"));
        assert_eq!(ep, Endpoint::Leaderboard);
        assert_eq!(resp.status, 200);
        let board = body_json(&resp);
        assert_eq!(board.get("live").unwrap().as_u64(), Some(0));
        let rows = board.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 3);
        let names: Vec<&str> = rows
            .iter()
            .map(|r| r.get("name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(names, ["cool", "warm", "hot"]);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.get("rank").unwrap().as_u64(), Some(i as u64 + 1));
            let ci = row.get("ci_gflops_per_w").unwrap().as_array().unwrap();
            let eff = row.get("gflops_per_w").unwrap().as_f64().unwrap();
            assert!(ci[0].as_f64().unwrap() <= eff && eff <= ci[1].as_f64().unwrap());
        }
        let (_, resp) = route(&state, &get("/v1/leaderboard?limit=1"));
        let top = body_json(&resp);
        assert_eq!(top.get("rows").unwrap().as_array().unwrap().len(), 1);

        // The gauge family stays bounded: one series per state, never
        // one per campaign, and the sample counters obey conservation.
        let (_, resp) = route(&state, &get("/metrics"));
        let page = String::from_utf8(resp.body).unwrap();
        assert!(page.contains("power_serve_campaigns{state=\"stopped\"} 3"));
        assert!(page.contains("power_serve_campaigns{state=\"live\"} 0"));
        assert_eq!(page.matches("power_serve_campaigns{").count(), 4);
        let counter = |outcome: &str| -> u64 {
            let prefix = format!("power_serve_fleet_samples_total{{outcome=\"{outcome}\"}} ");
            page.lines()
                .find_map(|l| l.strip_prefix(prefix.as_str()))
                .and_then(|rest| rest.trim().parse().ok())
                .unwrap()
        };
        assert!(counter("offered") > 0);
        assert_eq!(
            counter("offered"),
            counter("accepted")
                + counter("late_dropped")
                + counter("backpressure_dropped")
                + counter("duplicates")
                + counter("pending")
        );
    }

    #[test]
    fn metrics_renders_store_and_request_counters() {
        let state = state();
        let (_, _) = route(&state, &get("/healthz"));
        state
            .metrics
            .record(Endpoint::Healthz, 200, std::time::Duration::from_micros(10));
        let (_, resp) = route(&state, &get("/metrics"));
        assert_eq!(resp.status, 200);
        let page = String::from_utf8(resp.body).unwrap();
        assert!(page.contains("power_serve_requests_total{endpoint=\"healthz\"} 1"));
        assert!(page.contains("power_serve_store_total{outcome=\"misses\"} 0"));
    }
}

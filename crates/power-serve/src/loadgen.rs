//! A small loopback load generator for smoke tests and benchmarks.
//!
//! Two connection disciplines:
//!
//! * **cold** (`keep_alive: false`) — one fresh TCP connection per
//!   request, `Connection: close` on the wire; measures connection
//!   setup as much as the query path;
//! * **keep-alive** (`keep_alive: true`) — each thread drives one
//!   persistent connection through a [`PooledClient`], reading framed
//!   responses by `content-length` and reconnecting only when the
//!   server closes (idle timeout, per-connection cap, or drain).
//!
//! The client-side ledger counts **logical requests** (`offered ==
//! succeeded + rejected + error_status + failed`) and, separately, the
//! TCP `connections` it opened — the number the server's admission
//! ledger counts. A `503` can optionally be retried (`retry_rejected`)
//! honoring the advertised `Retry-After` plus jitter; a retried request
//! is still one `offered`, with extra attempts counted in `retries`, so
//! the conservation law stays exact.
//!
//! **Campaign mode** ([`run_campaigns`]) drives the fleet API instead
//! of the query API: create a fleet of campaigns (batched `POST
//! /v1/campaigns`), poll the live gauge to zero, read the final
//! leaderboard, and reconcile the server's ingest-plane conservation
//! law from `/metrics` — the load generator checks the same ledger the
//! fleet keeps internally, from the outside.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Builds a raw `GET` request for `path` (`Connection: close`).
pub fn get_request(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nhost: loadgen\r\nconnection: close\r\n\r\n").into_bytes()
}

/// Builds a raw `POST` request for `path` carrying a JSON `body`
/// (`Connection: close`).
pub fn post_request(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nhost: loadgen\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Builds a raw `GET` request for `path` that keeps the connection open
/// (HTTP/1.1 default keep-alive — no `Connection` header).
pub fn get_request_keep_alive(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nhost: loadgen\r\n\r\n").into_bytes()
}

/// Builds a keep-alive `POST` request for `path` carrying a JSON `body`.
pub fn post_request_keep_alive(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nhost: loadgen\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Sends one raw request on a fresh connection and returns
/// `(status, body)`. Reads to EOF — suitable only for `Connection:
/// close` requests, where the server closes after one response.
pub fn http_request(
    addr: SocketAddr,
    raw: &[u8],
    timeout: Duration,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(raw)?;
    let mut raw_response = Vec::new();
    stream.read_to_end(&mut raw_response)?;
    let parsed = parse_response_head(&raw_response)?;
    let body = String::from_utf8_lossy(&raw_response[parsed.body_start..]).into_owned();
    Ok((parsed.status, body))
}

/// Cold-mode request returning the status and any `Retry-After` hint.
fn http_request_classified(
    addr: SocketAddr,
    raw: &[u8],
    timeout: Duration,
) -> std::io::Result<(u16, Option<u64>)> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(raw)?;
    let mut raw_response = Vec::new();
    stream.read_to_end(&mut raw_response)?;
    let parsed = parse_response_head(&raw_response)?;
    Ok((parsed.status, parsed.retry_after_s))
}

/// One parsed response from a persistent connection.
#[derive(Debug, Clone)]
pub struct PooledResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// Advertised `Retry-After` seconds, when present (503s carry it).
    pub retry_after_s: Option<u64>,
    /// Whether the server kept the connection open after this response.
    pub kept_alive: bool,
}

/// The response head, parsed enough to frame and classify it.
struct ResponseHead {
    status: u16,
    content_length: usize,
    keep_alive: bool,
    retry_after_s: Option<u64>,
    body_start: usize,
}

fn invalid(msg: &'static str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Parses a response head out of `raw` (which must contain the full
/// `\r\n\r\n`-terminated head).
fn parse_response_head(raw: &[u8]) -> std::io::Result<ResponseHead> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| invalid("response head is not terminated"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| invalid("head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status = lines
        .next()
        .and_then(|l| l.strip_prefix("HTTP/1.1 "))
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| invalid("malformed status line"))?;
    let mut content_length = 0usize;
    let mut keep_alive = false;
    let mut retry_after_s = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().map_err(|_| invalid("bad content-length"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = value.eq_ignore_ascii_case("keep-alive");
        } else if name.eq_ignore_ascii_case("retry-after") {
            retry_after_s = value.parse().ok();
        }
    }
    Ok(ResponseHead {
        status,
        content_length,
        keep_alive,
        retry_after_s,
        body_start: head_end + 4,
    })
}

/// A client-side persistent connection: framed reads by
/// `content-length`, transparent reconnect when the server closes.
pub struct PooledClient {
    addr: SocketAddr,
    timeout: Duration,
    stream: Option<TcpStream>,
    carry: Vec<u8>,
    connections: u64,
}

impl PooledClient {
    /// A client for `addr` with `timeout` applied to connect/read/write.
    pub fn new(addr: SocketAddr, timeout: Duration) -> Self {
        PooledClient {
            addr,
            timeout,
            stream: None,
            carry: Vec::new(),
            connections: 0,
        }
    }

    /// TCP connections this client has opened so far — the number the
    /// server's admission ledger sees from this client.
    pub fn connections(&self) -> u64 {
        self.connections
    }

    /// Drops the current connection (the next request reconnects).
    pub fn disconnect(&mut self) {
        self.stream = None;
        self.carry.clear();
    }

    /// Sends `raw` and reads one framed response. If a **reused**
    /// connection turns out to be dead (the server closed it between
    /// requests), retries exactly once on a fresh connection; the
    /// request still counts once for the caller's ledger.
    pub fn request(&mut self, raw: &[u8]) -> std::io::Result<PooledResponse> {
        let reused = self.stream.is_some();
        match self.try_request(raw) {
            Ok(response) => Ok(response),
            Err(_) if reused => {
                self.disconnect();
                self.try_request(raw)
            }
            Err(e) => Err(e),
        }
    }

    fn try_request(&mut self, raw: &[u8]) -> std::io::Result<PooledResponse> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            // Requests are small; waiting for ACKs between them wastes
            // a delayed-ACK round trip per exchange.
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
            self.carry.clear();
            self.connections += 1;
        }
        let result = self.exchange(raw);
        match &result {
            Ok(response) if response.kept_alive => {}
            // Server closed (connection: close) or the exchange failed:
            // either way this stream is done.
            _ => self.disconnect(),
        }
        result
    }

    fn exchange(&mut self, raw: &[u8]) -> std::io::Result<PooledResponse> {
        let stream = self.stream.as_mut().expect("connected");
        stream.write_all(raw)?;
        // Read until the head is complete.
        let head = loop {
            if let Ok(head) = parse_response_head(&self.carry) {
                break head;
            }
            let mut chunk = [0u8; 4096];
            match stream.read(&mut chunk) {
                Ok(0) => return Err(invalid("connection closed before a full response head")),
                Ok(n) => self.carry.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(e),
            }
        };
        // Read until the declared body is complete.
        let total = head.body_start + head.content_length;
        while self.carry.len() < total {
            let mut chunk = [0u8; 4096];
            match stream.read(&mut chunk) {
                Ok(0) => return Err(invalid("connection closed mid-body")),
                Ok(n) => self.carry.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(e),
            }
        }
        let body = String::from_utf8_lossy(&self.carry[head.body_start..total]).into_owned();
        // Anything past the body would be the next response; the server
        // never sends unsolicited bytes, but keeping them is harmless.
        self.carry.drain(..total);
        Ok(PooledResponse {
            status: head.status,
            body,
            retry_after_s: head.retry_after_s,
            kept_alive: head.keep_alive,
        })
    }
}

/// What to offer: raw requests issued round-robin by every thread.
#[derive(Debug, Clone)]
pub struct LoadPlan {
    /// Concurrent client threads.
    pub threads: usize,
    /// Requests each thread sends.
    pub requests_per_thread: usize,
    /// Raw request bytes, cycled per thread in round-robin order. With
    /// `keep_alive: true` the targets should be keep-alive requests
    /// (no `Connection: close`), or every response closes the pool.
    pub targets: Vec<Vec<u8>>,
    /// Per-connection timeout.
    pub timeout: Duration,
    /// Reuse one persistent connection per thread instead of a fresh
    /// connection per request.
    pub keep_alive: bool,
    /// Extra attempts allowed per request after a `503`, each waiting
    /// the advertised `Retry-After` plus jitter. `0` disables retries.
    pub retry_rejected: u32,
}

impl Default for LoadPlan {
    fn default() -> Self {
        LoadPlan {
            threads: 4,
            requests_per_thread: 64,
            targets: vec![get_request("/healthz")],
            timeout: Duration::from_secs(5),
            keep_alive: false,
            retry_rejected: 0,
        }
    }
}

/// Aggregate outcome of a load run.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadReport {
    /// Logical requests offered. Retries of a rejected request do NOT
    /// increment this — each request is offered (and classified) once.
    pub offered: u64,
    /// `2xx` responses.
    pub succeeded: u64,
    /// Requests whose final outcome was a `503` (retries exhausted).
    pub rejected: u64,
    /// Non-503 error statuses (`4xx`/`5xx`).
    pub error_status: u64,
    /// Transport-level failures (connect, read, or write errors).
    pub failed: u64,
    /// TCP connections opened client-side — the count the server's
    /// admission ledger sees.
    pub connections: u64,
    /// Extra attempts sent after `503` responses.
    pub retries: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl LoadReport {
    /// The client-side conservation law: every offered request is
    /// classified exactly once, retried or not.
    pub fn conserved(&self) -> bool {
        self.offered == self.succeeded + self.rejected + self.error_status + self.failed
    }

    /// Completed requests (any HTTP response, counting a retried
    /// request once) per second.
    pub fn throughput_rps(&self) -> f64 {
        let answered = (self.succeeded + self.rejected + self.error_status) as f64;
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            answered / secs
        } else {
            0.0
        }
    }
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "offered {} = ok {} + 503 {} + err {} + failed {} over {} conns (+{} retries) in {:.2}s ({:.0} req/s)",
            self.offered,
            self.succeeded,
            self.rejected,
            self.error_status,
            self.failed,
            self.connections,
            self.retries,
            self.elapsed.as_secs_f64(),
            self.throughput_rps()
        )
    }
}

/// A tiny splitmix-style generator for retry jitter — the workspace has
/// no real `rand`, and loadgen only needs decorrelated backoff, not
/// statistical quality.
struct Jitter(u64);

impl Jitter {
    fn new(seed: u64) -> Self {
        Jitter(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1))
    }

    /// Uniform-ish in `0..bound` milliseconds.
    fn next_ms(&mut self, bound: u64) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) % bound.max(1)
    }
}

/// Runs `plan` against `addr` and aggregates the outcome.
pub fn run(addr: SocketAddr, plan: &LoadPlan) -> LoadReport {
    let succeeded = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    let error_status = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let connections = Arc::new(AtomicU64::new(0));
    let retries = Arc::new(AtomicU64::new(0));
    let threads = plan.threads.max(1);
    let per_thread = plan.requests_per_thread;
    let targets = Arc::new(plan.targets.clone());
    let timeout = plan.timeout;
    let keep_alive = plan.keep_alive;
    let retry_budget = plan.retry_rejected;

    let started = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let succeeded = Arc::clone(&succeeded);
            let rejected = Arc::clone(&rejected);
            let error_status = Arc::clone(&error_status);
            let failed = Arc::clone(&failed);
            let connections = Arc::clone(&connections);
            let retries = Arc::clone(&retries);
            let targets = Arc::clone(&targets);
            std::thread::spawn(move || {
                let mut client = keep_alive.then(|| PooledClient::new(addr, timeout));
                let mut jitter = Jitter::new(t as u64 + 1);
                for i in 0..per_thread {
                    let raw = &targets[(t + i) % targets.len()];
                    // One logical request: the first attempt plus up to
                    // `retry_budget` retries after 503s. Exactly one
                    // final outcome is recorded.
                    let mut attempt = 0u32;
                    let outcome = loop {
                        let response = match client.as_mut() {
                            Some(client) => client
                                .request(raw)
                                .map(|r| (r.status, r.retry_after_s))
                                .map_err(|_| ()),
                            None => {
                                connections.fetch_add(1, Ordering::Relaxed);
                                http_request_classified(addr, raw, timeout).map_err(|_| ())
                            }
                        };
                        match response {
                            Ok((503, retry_after)) if attempt < retry_budget => {
                                attempt += 1;
                                retries.fetch_add(1, Ordering::Relaxed);
                                let base_ms = retry_after.unwrap_or(1).saturating_mul(1000);
                                std::thread::sleep(Duration::from_millis(
                                    base_ms + jitter.next_ms(50),
                                ));
                            }
                            other => break other,
                        }
                    };
                    match outcome {
                        Ok((status, _)) if (200..300).contains(&status) => {
                            succeeded.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok((503, _)) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => {
                            error_status.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(()) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                if let Some(client) = client {
                    connections.fetch_add(client.connections(), Ordering::Relaxed);
                }
            })
        })
        .collect();
    for handle in handles {
        let _ = handle.join();
    }

    LoadReport {
        offered: (threads * per_thread) as u64,
        succeeded: succeeded.load(Ordering::Relaxed),
        rejected: rejected.load(Ordering::Relaxed),
        error_status: error_status.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        connections: connections.load(Ordering::Relaxed),
        retries: retries.load(Ordering::Relaxed),
        elapsed: started.elapsed(),
    }
}

/// Parameters for campaign-mode load: create a fleet of campaigns over
/// HTTP, poll them to completion, and reconcile every ledger.
#[derive(Debug, Clone)]
pub struct CampaignLoadPlan {
    /// Campaigns to create.
    pub campaigns: u64,
    /// Machine size per campaign.
    pub population: u64,
    /// Samples per metered node.
    pub samples_per_node: u32,
    /// Campaigns per `POST /v1/campaigns` (the `count` field).
    pub batch: u64,
    /// Base RNG seed; campaign `i` gets `seed + i`.
    pub seed: u64,
    /// Per-request timeout.
    pub timeout: Duration,
    /// Sleep between completion polls.
    pub poll: Duration,
    /// Give up if the fleet has not finished within this budget.
    pub max_wait: Duration,
}

impl Default for CampaignLoadPlan {
    fn default() -> Self {
        CampaignLoadPlan {
            campaigns: 100,
            population: 128,
            samples_per_node: 16,
            batch: 50,
            seed: 1,
            timeout: Duration::from_secs(10),
            poll: Duration::from_millis(50),
            max_wait: Duration::from_secs(60),
        }
    }
}

/// Outcome of a campaign-mode run, with both sides of every ledger.
#[derive(Debug, Clone, Copy, Default)]
pub struct CampaignReport {
    /// Campaigns the server acknowledged creating.
    pub created: u64,
    /// Campaigns that reached `stopped` or `exhausted`.
    pub finished: u64,
    /// Campaigns that reached `failed`.
    pub failed: u64,
    /// Rows the final leaderboard returned for this fleet.
    pub leaderboard_rows: u64,
    /// Leaderboard rows carrying a confidence interval.
    pub rows_with_ci: u64,
    /// Plane counter: samples offered (from `/metrics`).
    pub offered: u64,
    /// Plane counter: samples accepted.
    pub accepted: u64,
    /// Plane counter: late + backpressure drops.
    pub dropped: u64,
    /// Plane counter: duplicates discarded.
    pub duplicates: u64,
    /// Plane counter: samples still pending behind watermarks.
    pub pending: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl CampaignReport {
    /// The plane-wide conservation law, read back over HTTP: every
    /// sample the fleet offered was accepted, dropped, a duplicate, or
    /// is still pending — exactly one of them.
    pub fn conserved(&self) -> bool {
        self.offered == self.accepted + self.dropped + self.duplicates + self.pending
    }

    /// Campaign ledger: everything created reached a terminal state and
    /// appeared on the leaderboard.
    pub fn complete(&self) -> bool {
        self.created == self.finished + self.failed
            && self.failed == 0
            && self.leaderboard_rows >= self.created
            && self.rows_with_ci >= self.created
    }
}

impl std::fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "created {} -> finished {} + failed {}; leaderboard {} rows ({} with CI); \
             plane offered {} = accepted {} + dropped {} + dup {} + pending {} in {:.2}s",
            self.created,
            self.finished,
            self.failed,
            self.leaderboard_rows,
            self.rows_with_ci,
            self.offered,
            self.accepted,
            self.dropped,
            self.duplicates,
            self.pending,
            self.elapsed.as_secs_f64()
        )
    }
}

/// Parses one `power_serve_fleet_samples_total{outcome="..."}` counter
/// off a `/metrics` page.
fn fleet_counter(page: &str, outcome: &str) -> u64 {
    let prefix = format!("power_serve_fleet_samples_total{{outcome=\"{outcome}\"}} ");
    page.lines()
        .find_map(|line| line.strip_prefix(prefix.as_str()))
        .and_then(|rest| rest.trim().parse().ok())
        .unwrap_or(0)
}

/// Campaign mode: create -> poll -> leaderboard over one keep-alive
/// connection, then reconcile the campaign ledger and the ingest
/// plane's conservation law as read back from `/metrics`.
pub fn run_campaigns(addr: SocketAddr, plan: &CampaignLoadPlan) -> std::io::Result<CampaignReport> {
    use crate::json::Json;
    let started = Instant::now();
    let mut client = PooledClient::new(addr, plan.timeout);
    let mut report = CampaignReport::default();
    let mut ids: Vec<u64> = Vec::with_capacity(plan.campaigns as usize);

    // Create: batches of `batch` campaigns per POST.
    let mut remaining = plan.campaigns;
    let mut batch_index = 0u64;
    while remaining > 0 {
        let count = remaining.min(plan.batch.max(1));
        let body = format!(
            "{{\"name\": \"loadgen-{batch_index}\", \"population\": {}, \
              \"samples_per_node\": {}, \"seed\": {}, \"count\": {count}}}",
            plan.population,
            plan.samples_per_node,
            plan.seed.wrapping_add(batch_index * plan.batch),
        );
        let raw = post_request_keep_alive("/v1/campaigns", &body);
        let response = client.request(&raw)?;
        if response.status != 201 {
            return Err(invalid_owned(format!(
                "campaign create -> {}: {}",
                response.status, response.body
            )));
        }
        let parsed = Json::parse(&response.body)
            .map_err(|e| invalid_owned(format!("create response is not JSON: {e}")))?;
        if count == 1 {
            let id = parsed
                .get("id")
                .and_then(|v| v.as_u64())
                .ok_or_else(|| invalid("create response lacks an id"))?;
            ids.push(id);
        } else {
            let batch_ids = parsed
                .get("ids")
                .and_then(|v| v.as_array().map(|a| a.to_vec()))
                .ok_or_else(|| invalid("batch create response lacks ids"))?;
            for v in &batch_ids {
                ids.push(v.as_u64().ok_or_else(|| invalid("non-integer id"))?);
            }
        }
        report.created += count;
        remaining -= count;
        batch_index += 1;
    }

    // Poll: the leaderboard's `live` gauge falling to zero means every
    // campaign reached a terminal state.
    let deadline = Instant::now() + plan.max_wait;
    loop {
        let response = client.request(&get_request_keep_alive("/v1/leaderboard?limit=1"))?;
        if response.status != 200 {
            return Err(invalid_owned(format!(
                "leaderboard poll -> {}",
                response.status
            )));
        }
        let live = Json::parse(&response.body)
            .ok()
            .and_then(|j| j.get("live").and_then(|v| v.as_u64()))
            .ok_or_else(|| invalid("leaderboard response lacks `live`"))?;
        if live == 0 {
            break;
        }
        if Instant::now() > deadline {
            return Err(invalid_owned(format!(
                "fleet still has {live} live campaigns after {:?}",
                plan.max_wait
            )));
        }
        std::thread::sleep(plan.poll);
    }

    // Terminal states, campaign by campaign.
    for &id in &ids {
        let response = client.request(&get_request_keep_alive(&format!("/v1/campaigns/{id}")))?;
        if response.status != 200 {
            return Err(invalid_owned(format!(
                "campaign {id} -> {}",
                response.status
            )));
        }
        let status = Json::parse(&response.body)
            .ok()
            .and_then(|j| j.get("state").and_then(|v| v.as_str().map(str::to_string)))
            .ok_or_else(|| invalid("campaign response lacks `state`"))?;
        match status.as_str() {
            "stopped" | "exhausted" => report.finished += 1,
            "failed" => report.failed += 1,
            other => {
                return Err(invalid_owned(format!(
                    "campaign {id} still `{other}` after the live gauge hit zero"
                )))
            }
        }
    }

    // The final leaderboard over the whole fleet.
    let response = client.request(&get_request_keep_alive(&format!(
        "/v1/leaderboard?limit={}",
        plan.campaigns.max(1)
    )))?;
    let rows = Json::parse(&response.body)
        .ok()
        .and_then(|j| j.get("rows").and_then(|v| v.as_array().map(|a| a.to_vec())))
        .ok_or_else(|| invalid("leaderboard response lacks rows"))?;
    report.leaderboard_rows = rows.len() as u64;
    report.rows_with_ci = rows
        .iter()
        .filter(|r| {
            r.get("ci_gflops_per_w")
                .is_some_and(|ci| !matches!(ci, Json::Null))
        })
        .count() as u64;

    // Reconcile the plane's conservation law from `/metrics`.
    let response = client.request(&get_request_keep_alive("/metrics"))?;
    if response.status != 200 {
        return Err(invalid_owned(format!("/metrics -> {}", response.status)));
    }
    report.offered = fleet_counter(&response.body, "offered");
    report.accepted = fleet_counter(&response.body, "accepted");
    report.dropped = fleet_counter(&response.body, "late_dropped")
        + fleet_counter(&response.body, "backpressure_dropped");
    report.duplicates = fleet_counter(&response.body, "duplicates");
    report.pending = fleet_counter(&response.body, "pending");
    report.elapsed = started.elapsed();
    Ok(report)
}

fn invalid_owned(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_conservation_and_throughput() {
        let report = LoadReport {
            offered: 10,
            succeeded: 7,
            rejected: 2,
            error_status: 1,
            failed: 0,
            connections: 10,
            retries: 3,
            elapsed: Duration::from_secs(2),
        };
        assert!(report.conserved());
        assert!((report.throughput_rps() - 5.0).abs() < 1e-9);
        let broken = LoadReport {
            offered: 10,
            succeeded: 1,
            ..LoadReport::default()
        };
        assert!(!broken.conserved());
    }

    #[test]
    fn parses_a_framed_response_head() {
        let head = parse_response_head(
            b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\nconnection: keep-alive\r\n\r\nhi",
        )
        .unwrap();
        assert_eq!(head.status, 200);
        assert_eq!(head.content_length, 2);
        assert!(head.keep_alive);
        assert_eq!(head.retry_after_s, None);

        let rejected = parse_response_head(
            b"HTTP/1.1 503 Service Unavailable\r\ncontent-length: 0\r\nconnection: close\r\nretry-after: 2\r\n\r\n",
        )
        .unwrap();
        assert_eq!(rejected.status, 503);
        assert!(!rejected.keep_alive);
        assert_eq!(rejected.retry_after_s, Some(2));

        assert!(parse_response_head(b"garbage").is_err());
    }

    #[test]
    fn keep_alive_builders_omit_the_close_header() {
        let ka = String::from_utf8(get_request_keep_alive("/healthz")).unwrap();
        assert!(!ka.contains("connection:"));
        let cold = String::from_utf8(get_request("/healthz")).unwrap();
        assert!(cold.contains("connection: close"));
        let post = String::from_utf8(post_request_keep_alive("/x", "{}")).unwrap();
        assert!(!post.contains("connection:"));
        assert!(post.contains("content-length: 2"));
    }

    #[test]
    fn jitter_is_bounded() {
        let mut j = Jitter::new(7);
        for _ in 0..1000 {
            assert!(j.next_ms(50) < 50);
        }
    }
}

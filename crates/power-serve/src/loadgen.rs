//! A small loopback load generator for smoke tests and benchmarks.
//!
//! The client speaks the same one-request-per-connection protocol the
//! server enforces (`Connection: close`), so its accounting lines up
//! with the server's admission counters connection-for-connection: every
//! request here is exactly one `offered` on the server side, and the
//! report's `offered == succeeded + rejected + failed` mirrors the
//! server's `offered == accepted + rejected`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Builds a raw `GET` request for `path`.
pub fn get_request(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nhost: loadgen\r\nconnection: close\r\n\r\n").into_bytes()
}

/// Builds a raw `POST` request for `path` carrying a JSON `body`.
pub fn post_request(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nhost: loadgen\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Sends one raw request on a fresh connection and returns
/// `(status, body)`. Reads to EOF — the server closes after one response.
pub fn http_request(
    addr: SocketAddr,
    raw: &[u8],
    timeout: Duration,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(raw)?;
    let mut raw_response = Vec::new();
    stream.read_to_end(&mut raw_response)?;
    parse_response(&raw_response)
}

fn parse_response(raw: &[u8]) -> std::io::Result<(u16, String)> {
    let text = String::from_utf8_lossy(raw);
    let status = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
        })?;
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// What to offer: raw requests issued round-robin by every thread.
#[derive(Debug, Clone)]
pub struct LoadPlan {
    /// Concurrent client threads.
    pub threads: usize,
    /// Requests each thread sends (one connection per request).
    pub requests_per_thread: usize,
    /// Raw request bytes, cycled per thread in round-robin order.
    pub targets: Vec<Vec<u8>>,
    /// Per-connection timeout.
    pub timeout: Duration,
}

impl Default for LoadPlan {
    fn default() -> Self {
        LoadPlan {
            threads: 4,
            requests_per_thread: 64,
            targets: vec![get_request("/healthz")],
            timeout: Duration::from_secs(5),
        }
    }
}

/// Aggregate outcome of a load run.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadReport {
    /// Connections attempted (one per request).
    pub offered: u64,
    /// `2xx` responses.
    pub succeeded: u64,
    /// `503` backpressure rejections.
    pub rejected: u64,
    /// Non-503 error statuses (`4xx`/`5xx`).
    pub error_status: u64,
    /// Transport-level failures (connect, read, or write errors).
    pub failed: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl LoadReport {
    /// The client-side conservation law: every offered connection is
    /// classified exactly once.
    pub fn conserved(&self) -> bool {
        self.offered == self.succeeded + self.rejected + self.error_status + self.failed
    }

    /// Completed requests (any HTTP response) per second.
    pub fn throughput_rps(&self) -> f64 {
        let answered = (self.succeeded + self.rejected + self.error_status) as f64;
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            answered / secs
        } else {
            0.0
        }
    }
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "offered {} = ok {} + 503 {} + err {} + failed {} in {:.2}s ({:.0} req/s)",
            self.offered,
            self.succeeded,
            self.rejected,
            self.error_status,
            self.failed,
            self.elapsed.as_secs_f64(),
            self.throughput_rps()
        )
    }
}

/// Runs `plan` against `addr` and aggregates the outcome.
pub fn run(addr: SocketAddr, plan: &LoadPlan) -> LoadReport {
    let succeeded = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    let error_status = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let threads = plan.threads.max(1);
    let per_thread = plan.requests_per_thread;
    let targets = Arc::new(plan.targets.clone());
    let timeout = plan.timeout;

    let started = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let succeeded = Arc::clone(&succeeded);
            let rejected = Arc::clone(&rejected);
            let error_status = Arc::clone(&error_status);
            let failed = Arc::clone(&failed);
            let targets = Arc::clone(&targets);
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    let raw = &targets[(t + i) % targets.len()];
                    match http_request(addr, raw, timeout) {
                        Ok((status, _)) if (200..300).contains(&status) => {
                            succeeded.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok((503, _)) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => {
                            error_status.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        let _ = handle.join();
    }

    LoadReport {
        offered: (threads * per_thread) as u64,
        succeeded: succeeded.load(Ordering::Relaxed),
        rejected: rejected.load(Ordering::Relaxed),
        error_status: error_status.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        elapsed: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_conservation_and_throughput() {
        let report = LoadReport {
            offered: 10,
            succeeded: 7,
            rejected: 2,
            error_status: 1,
            failed: 0,
            elapsed: Duration::from_secs(2),
        };
        assert!(report.conserved());
        assert!((report.throughput_rps() - 5.0).abs() < 1e-9);
        let broken = LoadReport {
            offered: 10,
            succeeded: 1,
            ..LoadReport::default()
        };
        assert!(!broken.conserved());
    }

    #[test]
    fn parses_a_response() {
        let (status, body) =
            parse_response(b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nhi").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "hi");
        assert!(parse_response(b"garbage").is_err());
    }
}

//! Minimal JSON value, parser and writer.
//!
//! The workspace builds hermetically (the vendored `serde` is a marker
//! shim; see `crates/vendor/README.md`), so the serving layer carries its
//! own small JSON codec: a recursive-descent parser with depth and size
//! discipline, and a writer producing compact, round-trippable output.
//! Numbers are `f64` throughout — every quantity the service reports
//! (watts, node counts, probabilities, latencies) fits losslessly for the
//! integer ranges in play (|n| ≤ 2^53).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum nesting depth accepted by the parser; deeper input is rejected
/// rather than risking stack exhaustion on adversarial bodies.
const MAX_DEPTH: usize = 64;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always an `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; `BTreeMap` keeps rendering deterministic.
    Object(BTreeMap<String, Json>),
}

/// Why a body failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What was wrong.
    pub reason: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (rejecting trailing garbage).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// An object from `(key, value)` pairs.
    pub fn object<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }

    /// A number value.
    pub fn num(n: f64) -> Json {
        Json::Number(n)
    }

    /// Member lookup on an object; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a finite number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) if n.is_finite() => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejecting fractions).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n <= 2f64.powi(53) && n.fract() == 0.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The value as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Compact rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(n) => write_number(*n, out),
            Json::String(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; degrade to null rather than emit garbage.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &'static str) -> JsonError {
        JsonError {
            at: self.pos,
            reason,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, reason: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(reason))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{', "expected object")?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected `:` after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Decode a surrogate pair when present; a lone
                            // surrogate degrades to U+FFFD.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        let combined =
                                            0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                        char::from_u32(combined).unwrap_or('\u{FFFD}')
                                    } else {
                                        '\u{FFFD}'
                                    }
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_structures() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "3.25",
            "1e3",
            "\"hi\"",
            "[]",
            "[1,2,3]",
            "{\"a\":1,\"b\":[true,null]}",
        ] {
            let v = Json::parse(text).unwrap();
            let rendered = v.render();
            assert_eq!(Json::parse(&rendered).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n": 42, "s": "x", "b": true, "a": [1], "f": 1.5}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(42.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(v.get("f").unwrap().as_u64(), None, "fractional is not u64");
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Json::parse(r#""a\"b\\c\n\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nAé"));
        let pair = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(pair.as_str(), Some("😀"));
        // Control characters are escaped on output.
        assert_eq!(Json::str("a\u{1}b").render(), "\"a\\u0001b\"");
    }

    #[test]
    fn rejects_malformed_documents() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "nul",
            "01x",
            "\"unterminated",
            "[1] trailing",
            "{\"a\" 1}",
            "+5",
            "--2",
            "1e999",
            "\"\\q\"",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn depth_limit_rejects_instead_of_overflowing() {
        let deep = "[".repeat(2000) + &"]".repeat(2000);
        assert!(Json::parse(&deep).is_err());
    }
}

//! HTTP/1.1 subset: request parsing with hard limits, response writing.
//!
//! The server speaks exactly the protocol slice its clients need —
//! persistent connections with HTTP/1.1 default keep-alive, explicit
//! `Connection: close` honored — and is paranoid about the rest: the
//! head and body are read under byte caps, malformed requests map to
//! `400`, oversized bodies to `413`, and a socket read timeout (set by
//! the caller) bounds how long a truncated request can occupy a worker.
//! The parser never panics on arbitrary bytes; every failure is a typed
//! [`HttpError`] the worker turns into a status line.
//!
//! Sequential requests on one connection go through a [`RequestBuffer`],
//! which owns the bytes over-read past each request's body so a
//! pipelined next request head is never lost. Ambiguous framing —
//! duplicate `Content-Length` headers — is rejected with `400`; under
//! keep-alive that ambiguity is a request-desync (smuggling) hazard, not
//! just a parsing nit.

use std::io::{Read, Write};

/// Byte caps applied while reading a request.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Maximum bytes of request line + headers (through `\r\n\r\n`).
    pub max_head_bytes: usize,
    /// Maximum request body bytes.
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 64 * 1024,
        }
    }
}

/// Why a request could not be read; [`HttpError::status`] maps each case
/// to the response the worker sends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Syntactically invalid request (or missing required framing).
    BadRequest(&'static str),
    /// Declared or actual body exceeds [`HttpLimits::max_body_bytes`].
    PayloadTooLarge,
    /// Head exceeds [`HttpLimits::max_head_bytes`].
    HeadTooLarge,
    /// The socket timed out or closed before a full request arrived.
    Incomplete,
}

impl HttpError {
    /// The response status for this failure.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::PayloadTooLarge => 413,
            HttpError::HeadTooLarge => 431,
            HttpError::Incomplete => 408,
        }
    }

    /// Human-readable detail for the error body.
    pub fn detail(&self) -> &'static str {
        match self {
            HttpError::BadRequest(reason) => reason,
            HttpError::PayloadTooLarge => "request body exceeds the configured limit",
            HttpError::HeadTooLarge => "request head exceeds the configured limit",
            HttpError::Incomplete => "connection closed or timed out mid-request",
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status(), self.detail())
    }
}

impl std::error::Error for HttpError {}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path component (no query string).
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Lower-cased header names with raw values.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// `true` for `HTTP/1.1`, `false` for `HTTP/1.0`.
    pub http11: bool,
}

impl Request {
    /// First query parameter named `key`.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First header named `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8.
    pub fn body_utf8(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body).map_err(|_| HttpError::BadRequest("body is not UTF-8"))
    }

    /// Whether the client wants the connection kept open after this
    /// request: HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close, and
    /// an explicit `Connection: close` / `keep-alive` token overrides
    /// the default either way.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(value) => {
                let has = |token: &str| {
                    value
                        .split(',')
                        .any(|t| t.trim().eq_ignore_ascii_case(token))
                };
                if has("close") {
                    false
                } else if has("keep-alive") {
                    true
                } else {
                    self.http11
                }
            }
            None => self.http11,
        }
    }
}

/// Reads one request from `stream` under `limits`, with no carry-over.
///
/// Single-shot convenience for tests and one-request flows; persistent
/// connections must hold one [`RequestBuffer`] per connection instead so
/// bytes over-read past a body (a pipelined next request) survive.
pub fn read_request<R: Read>(
    stream: &mut R,
    limits: &HttpLimits,
) -> Result<Option<Request>, HttpError> {
    RequestBuffer::new().next_request(stream, limits)
}

/// Per-connection read state: the bytes received but not yet consumed by
/// a parsed request.
///
/// A connection serving sequential requests reads in chunks, so the tail
/// of one read may hold the head of the next request. The buffer keeps
/// that tail between [`RequestBuffer::next_request`] calls; dropping it
/// (the pre-keep-alive behavior) silently discards pipelined requests.
#[derive(Debug, Default)]
pub struct RequestBuffer {
    carry: Vec<u8>,
}

impl RequestBuffer {
    /// An empty buffer for a fresh connection.
    pub fn new() -> Self {
        RequestBuffer::default()
    }

    /// Bytes received but not yet consumed by a parsed request.
    pub fn buffered(&self) -> usize {
        self.carry.len()
    }

    /// Appends bytes received outside [`RequestBuffer::next_request`] —
    /// e.g. the first bytes of a request observed while waiting out the
    /// between-requests idle budget — so the next parse starts from
    /// them.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.carry.extend_from_slice(bytes);
    }

    /// Reads the next request from `stream` under `limits`.
    ///
    /// `Ok(None)` means the connection is cleanly done: the peer closed
    /// (or the socket timed out) between requests, with no partial
    /// request buffered. Partial bytes followed by EOF/timeout are
    /// [`HttpError::Incomplete`]. On any error the carry is dropped —
    /// framing is no longer trustworthy and the connection must close.
    pub fn next_request<R: Read>(
        &mut self,
        stream: &mut R,
        limits: &HttpLimits,
    ) -> Result<Option<Request>, HttpError> {
        match self.next_request_inner(stream, limits) {
            Ok(req) => Ok(req),
            Err(e) => {
                self.carry.clear();
                Err(e)
            }
        }
    }

    fn next_request_inner<R: Read>(
        &mut self,
        stream: &mut R,
        limits: &HttpLimits,
    ) -> Result<Option<Request>, HttpError> {
        // Start from the carry (it may already hold a whole pipelined
        // request), then read in chunks up to the cap, scanning for
        // `\r\n\r\n`. The terminator scan resumes 3 bytes before the
        // previously scanned end so a straddling terminator is found.
        let mut buf = std::mem::take(&mut self.carry);
        let mut scanned = 0usize;
        let head_end = loop {
            let scan_from = scanned.saturating_sub(3);
            if let Some(pos) = buf[scan_from..].windows(4).position(|w| w == b"\r\n\r\n") {
                break scan_from + pos + 4;
            }
            scanned = buf.len();
            if buf.len() >= limits.max_head_bytes {
                return Err(HttpError::HeadTooLarge);
            }
            let old = buf.len();
            let chunk = 512.min(limits.max_head_bytes - old);
            buf.resize(old + chunk, 0);
            match stream.read(&mut buf[old..]) {
                Ok(0) => {
                    buf.truncate(old);
                    if buf.is_empty() {
                        return Ok(None);
                    }
                    return Err(HttpError::Incomplete);
                }
                Ok(n) => buf.truncate(old + n),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    buf.truncate(old);
                    // A timeout with nothing buffered is an idle
                    // connection expiring between requests — a clean
                    // close, not a protocol error.
                    if buf.is_empty() {
                        return Ok(None);
                    }
                    return Err(HttpError::Incomplete);
                }
                Err(_) => {
                    buf.truncate(old);
                    if buf.is_empty() {
                        return Ok(None);
                    }
                    return Err(HttpError::Incomplete);
                }
            }
        };
        let (head, leftover) = buf.split_at(head_end);

        let head_str =
            std::str::from_utf8(head).map_err(|_| HttpError::BadRequest("head is not UTF-8"))?;
        let mut lines = head_str.trim_end_matches("\r\n").split("\r\n");
        let request_line = lines.next().ok_or(HttpError::BadRequest("empty head"))?;
        let mut parts = request_line.split(' ');
        let method = parts
            .next()
            .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
            .ok_or(HttpError::BadRequest("malformed method"))?;
        let target = parts
            .next()
            .filter(|t| t.starts_with('/'))
            .ok_or(HttpError::BadRequest("malformed request target"))?;
        let version = parts
            .next()
            .ok_or(HttpError::BadRequest("missing HTTP version"))?;
        if !(version == "HTTP/1.1" || version == "HTTP/1.0") || parts.next().is_some() {
            return Err(HttpError::BadRequest("malformed HTTP version"));
        }
        let http11 = version == "HTTP/1.1";

        let mut headers = Vec::new();
        for line in lines {
            let (name, value) = line
                .split_once(':')
                .ok_or(HttpError::BadRequest("malformed header line"))?;
            if name.is_empty() || name.contains(' ') {
                return Err(HttpError::BadRequest("malformed header name"));
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }

        // Framing must be unambiguous: with persistent connections a
        // second Content-Length silently ignored would desynchronize
        // every request after this one (request smuggling).
        let mut lengths = headers.iter().filter(|(k, _)| k == "content-length");
        let content_length = match lengths.next().map(|(_, v)| v.as_str()) {
            Some(_) if lengths.next().is_some() => {
                return Err(HttpError::BadRequest("duplicate Content-Length header"))
            }
            Some(v) => v
                .parse::<usize>()
                .map_err(|_| HttpError::BadRequest("unparseable Content-Length"))?,
            None if method == "POST" || method == "PUT" => {
                return Err(HttpError::BadRequest(
                    "POST requires a Content-Length header",
                ))
            }
            None => 0,
        };
        if content_length > limits.max_body_bytes {
            return Err(HttpError::PayloadTooLarge);
        }

        // Body bytes over-read with the head come first; read the rest.
        let mut body = vec![0u8; content_length];
        let prefix = leftover.len().min(content_length);
        body[..prefix].copy_from_slice(&leftover[..prefix]);
        // Whatever follows the body is the next request's head: keep it.
        self.carry = leftover[prefix..].to_vec();
        let mut read = prefix;
        while read < content_length {
            match stream.read(&mut body[read..]) {
                Ok(0) => return Err(HttpError::Incomplete),
                Ok(n) => read += n,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(HttpError::Incomplete)
                }
                Err(_) => return Err(HttpError::Incomplete),
            }
        }

        let (path, query) = split_target(target)?;
        Ok(Some(Request {
            method: method.to_string(),
            path,
            query,
            headers,
            body,
            http11,
        }))
    }
}

/// Splits a request target into a decoded path and query pairs.
fn split_target(target: &str) -> Result<(String, Vec<(String, String)>), HttpError> {
    let (path_raw, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(path_raw)?;
    let mut query = Vec::new();
    if let Some(q) = query_raw {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.push((percent_decode(k)?, percent_decode(v)?));
        }
    }
    Ok((path, query))
}

/// Decodes `%xx` escapes and `+` (as space in query values).
fn percent_decode(s: &str) -> Result<String, HttpError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                if i + 2 >= bytes.len() {
                    return Err(HttpError::BadRequest("truncated percent escape"));
                }
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3])
                    .map_err(|_| HttpError::BadRequest("invalid percent escape"))?;
                let b = u8::from_str_radix(hex, 16)
                    .map_err(|_| HttpError::BadRequest("invalid percent escape"))?;
                out.push(b);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| HttpError::BadRequest("percent escape is not UTF-8"))
}

/// The canonical reason phrase for the status codes the service emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A response to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the always-present framing set.
    pub headers: Vec<(&'static str, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: &crate::json::Json) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.render().into_bytes(),
            content_type: "application/json",
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
            content_type: "text/plain; charset=utf-8",
        }
    }

    /// A JSON error envelope: `{"error": detail}`.
    pub fn error(status: u16, detail: &str) -> Response {
        Response::json(
            status,
            &crate::json::Json::object([("error", crate::json::Json::str(detail))]),
        )
    }

    /// Appends a header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }

    /// Serializes with `connection: close` — the one-shot convenience.
    pub fn write_to<W: Write>(&self, stream: &mut W) -> std::io::Result<()> {
        self.write_to_conn(stream, false)
    }

    /// Serializes status line, headers and body to `stream`, advertising
    /// whether the server will keep the connection open afterwards.
    ///
    /// Head and body go out in a single `write_all`: on a persistent
    /// connection, a split write leaves the body as a second small
    /// segment that Nagle holds until the head is ACKed — and a
    /// delayed-ACK peer turns that into ~40 ms per response.
    pub fn write_to_conn<W: Write>(&self, stream: &mut W, keep_alive: bool) -> std::io::Result<()> {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let mut out = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {connection}\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len()
        )
        .into_bytes();
        for (name, value) in &self.headers {
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(value.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        stream.write_all(&out)?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut Cursor::new(raw.to_vec()), &HttpLimits::default())
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse(
            b"GET /v1/trace/window?from=10&to=20.5&name=L%2DCSC+x HTTP/1.1\r\nHost: a\r\n\r\n",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/trace/window");
        assert_eq!(req.query_param("from"), Some("10"));
        assert_eq!(req.query_param("to"), Some("20.5"));
        assert_eq!(req.query_param("name"), Some("L-CSC x"));
        assert_eq!(req.header("host"), Some("a"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(b"POST /v1/measure HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body_utf8().unwrap(), "{\"a\":1}");
    }

    #[test]
    fn clean_close_is_none_truncated_is_incomplete() {
        assert_eq!(parse(b"").unwrap(), None);
        assert_eq!(parse(b"GET / HT").unwrap_err(), HttpError::Incomplete);
        assert_eq!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err(),
            HttpError::Incomplete
        );
    }

    #[test]
    fn malformed_requests_are_400() {
        for raw in [
            b"BAD_LINE\r\n\r\n".to_vec(),
            b"get / HTTP/1.1\r\n\r\n".to_vec(),
            b"GET  HTTP/1.1\r\n\r\n".to_vec(),
            b"GET / HTTP/2.7\r\n\r\n".to_vec(),
            b"GET / HTTP/1.1 extra\r\n\r\n".to_vec(),
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n".to_vec(),
            b"POST /x HTTP/1.1\r\n\r\n".to_vec(),
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n".to_vec(),
            b"GET /%zz HTTP/1.1\r\n\r\n".to_vec(),
            b"GET /%2 HTTP/1.1\r\n\r\n".to_vec(),
        ] {
            match parse(&raw) {
                Err(HttpError::BadRequest(_)) => {}
                other => panic!("{:?} -> {:?}", String::from_utf8_lossy(&raw), other),
            }
        }
    }

    #[test]
    fn oversized_head_and_body_are_rejected() {
        let limits = HttpLimits {
            max_head_bytes: 64,
            max_body_bytes: 16,
        };
        let huge_head = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(200));
        assert_eq!(
            read_request(&mut Cursor::new(huge_head.into_bytes()), &limits).unwrap_err(),
            HttpError::HeadTooLarge
        );
        let big_body = b"POST /x HTTP/1.1\r\nContent-Length: 1000\r\n\r\n".to_vec();
        assert_eq!(
            read_request(&mut Cursor::new(big_body), &limits).unwrap_err(),
            HttpError::PayloadTooLarge
        );
    }

    #[test]
    fn duplicate_content_length_is_400() {
        // Identical duplicates, conflicting duplicates, and duplicates
        // split around other headers are all ambiguous framing: with
        // keep-alive, guessing wrong desyncs every later request.
        for raw in [
            b"POST /x HTTP/1.1\r\nContent-Length: 7\r\nContent-Length: 7\r\n\r\n{\"a\":1}".to_vec(),
            b"POST /x HTTP/1.1\r\nContent-Length: 7\r\nContent-Length: 9\r\n\r\n{\"a\":1}".to_vec(),
            b"POST /x HTTP/1.1\r\nContent-Length: 7\r\nHost: a\r\ncontent-length: 2\r\n\r\n{\"a\":1}"
                .to_vec(),
        ] {
            assert_eq!(
                parse(&raw).unwrap_err(),
                HttpError::BadRequest("duplicate Content-Length header"),
                "{}",
                String::from_utf8_lossy(&raw)
            );
        }
    }

    #[test]
    fn whitespace_padded_content_length_parses() {
        let req = parse(b"POST /x HTTP/1.1\r\nContent-Length:   7  \r\n\r\n{\"a\":1}")
            .unwrap()
            .unwrap();
        assert_eq!(req.body_utf8().unwrap(), "{\"a\":1}");
    }

    #[test]
    fn keep_alive_follows_version_and_connection_header() {
        let ka = |raw: &[u8]| parse(raw).unwrap().unwrap().keep_alive();
        assert!(ka(b"GET / HTTP/1.1\r\n\r\n"), "1.1 defaults to keep-alive");
        assert!(!ka(b"GET / HTTP/1.0\r\n\r\n"), "1.0 defaults to close");
        assert!(!ka(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
        assert!(!ka(b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n"));
        assert!(ka(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"));
        assert!(!ka(
            b"GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n"
        ));
        assert!(ka(b"GET / HTTP/1.1\r\nConnection: upgrade\r\n\r\n"));
    }

    #[test]
    fn pipelined_requests_survive_in_the_carry() {
        let raw = b"POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyzGET /b HTTP/1.1\r\n\r\nGET /c HTTP/1.1\r\n\r\n";
        let mut cursor = Cursor::new(raw.to_vec());
        let mut buf = RequestBuffer::new();
        let limits = HttpLimits::default();
        let first = buf.next_request(&mut cursor, &limits).unwrap().unwrap();
        assert_eq!(first.path, "/a");
        assert_eq!(first.body, b"xyz");
        assert!(buf.buffered() > 0, "the next request head is carried");
        let second = buf.next_request(&mut cursor, &limits).unwrap().unwrap();
        assert_eq!(second.path, "/b");
        let third = buf.next_request(&mut cursor, &limits).unwrap().unwrap();
        assert_eq!(third.path, "/c");
        assert_eq!(buf.next_request(&mut cursor, &limits).unwrap(), None);
    }

    #[test]
    fn response_serializes_keep_alive_header() {
        let mut out = Vec::new();
        Response::text(200, "ok")
            .write_to_conn(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("connection: keep-alive\r\n"));
    }

    #[test]
    fn response_serializes_with_framing_headers() {
        let mut out = Vec::new();
        Response::text(503, "busy")
            .with_header("retry-after", "1")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("content-length: 4\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nbusy"));
    }
}

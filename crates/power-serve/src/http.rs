//! HTTP/1.1 subset: request parsing with hard limits, response writing.
//!
//! The server speaks exactly the protocol slice its clients need — one
//! request per connection, `Connection: close` on every response — and is
//! paranoid about the rest: the head and body are read under byte caps,
//! malformed requests map to `400`, oversized bodies to `413`, and a
//! socket read timeout (set by the caller) bounds how long a truncated
//! request can occupy a worker. The parser never panics on arbitrary
//! bytes; every failure is a typed [`HttpError`] the worker turns into a
//! status line.

use std::io::{Read, Write};

/// Byte caps applied while reading a request.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Maximum bytes of request line + headers (through `\r\n\r\n`).
    pub max_head_bytes: usize,
    /// Maximum request body bytes.
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 64 * 1024,
        }
    }
}

/// Why a request could not be read; [`HttpError::status`] maps each case
/// to the response the worker sends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Syntactically invalid request (or missing required framing).
    BadRequest(&'static str),
    /// Declared or actual body exceeds [`HttpLimits::max_body_bytes`].
    PayloadTooLarge,
    /// Head exceeds [`HttpLimits::max_head_bytes`].
    HeadTooLarge,
    /// The socket timed out or closed before a full request arrived.
    Incomplete,
}

impl HttpError {
    /// The response status for this failure.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::PayloadTooLarge => 413,
            HttpError::HeadTooLarge => 431,
            HttpError::Incomplete => 408,
        }
    }

    /// Human-readable detail for the error body.
    pub fn detail(&self) -> &'static str {
        match self {
            HttpError::BadRequest(reason) => reason,
            HttpError::PayloadTooLarge => "request body exceeds the configured limit",
            HttpError::HeadTooLarge => "request head exceeds the configured limit",
            HttpError::Incomplete => "connection closed or timed out mid-request",
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status(), self.detail())
    }
}

impl std::error::Error for HttpError {}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path component (no query string).
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Lower-cased header names with raw values.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First query parameter named `key`.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First header named `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8.
    pub fn body_utf8(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body).map_err(|_| HttpError::BadRequest("body is not UTF-8"))
    }
}

/// Reads one request from `stream` under `limits`.
///
/// `Ok(None)` means the peer closed cleanly before sending anything (the
/// idle-connection case); any bytes followed by EOF/timeout is
/// [`HttpError::Incomplete`].
pub fn read_request<R: Read>(
    stream: &mut R,
    limits: &HttpLimits,
) -> Result<Option<Request>, HttpError> {
    // Read the head in chunks up to the cap, scanning for `\r\n\r\n`.
    // The one-request-per-connection protocol means any body bytes
    // over-read with the head stay ours to consume, so buffering is safe
    // and keeps syscalls per request to a handful.
    let mut buf = Vec::with_capacity(512);
    let head_end = loop {
        let old = buf.len();
        let chunk = 512.min(limits.max_head_bytes - old);
        buf.resize(old + chunk, 0);
        match stream.read(&mut buf[old..]) {
            Ok(0) => {
                buf.truncate(old);
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Incomplete);
            }
            Ok(n) => buf.truncate(old + n),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(HttpError::Incomplete)
            }
            Err(_) => return Err(HttpError::Incomplete),
        }
        // The terminator may straddle the previous chunk boundary.
        let scan_from = old.saturating_sub(3);
        if let Some(pos) = buf[scan_from..].windows(4).position(|w| w == b"\r\n\r\n") {
            break scan_from + pos + 4;
        }
        if buf.len() >= limits.max_head_bytes {
            return Err(HttpError::HeadTooLarge);
        }
    };
    let (head, leftover) = buf.split_at(head_end);

    let head_str =
        std::str::from_utf8(head).map_err(|_| HttpError::BadRequest("head is not UTF-8"))?;
    let mut lines = head_str.trim_end_matches("\r\n").split("\r\n");
    let request_line = lines.next().ok_or(HttpError::BadRequest("empty head"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or(HttpError::BadRequest("malformed method"))?;
    let target = parts
        .next()
        .filter(|t| t.starts_with('/'))
        .ok_or(HttpError::BadRequest("malformed request target"))?;
    let version = parts
        .next()
        .ok_or(HttpError::BadRequest("missing HTTP version"))?;
    if !(version == "HTTP/1.1" || version == "HTTP/1.0") || parts.next().is_some() {
        return Err(HttpError::BadRequest("malformed HTTP version"));
    }

    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::BadRequest("malformed header line"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadRequest("malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.as_str())
    {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest("unparseable Content-Length"))?,
        None if method == "POST" || method == "PUT" => {
            return Err(HttpError::BadRequest(
                "POST requires a Content-Length header",
            ))
        }
        None => 0,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::PayloadTooLarge);
    }

    // Body bytes over-read with the head come first; read the rest.
    let mut body = vec![0u8; content_length];
    let prefix = leftover.len().min(content_length);
    body[..prefix].copy_from_slice(&leftover[..prefix]);
    let mut read = prefix;
    while read < content_length {
        match stream.read(&mut body[read..]) {
            Ok(0) => return Err(HttpError::Incomplete),
            Ok(n) => read += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(HttpError::Incomplete)
            }
            Err(_) => return Err(HttpError::Incomplete),
        }
    }

    let (path, query) = split_target(target)?;
    Ok(Some(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
    }))
}

/// Splits a request target into a decoded path and query pairs.
fn split_target(target: &str) -> Result<(String, Vec<(String, String)>), HttpError> {
    let (path_raw, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(path_raw)?;
    let mut query = Vec::new();
    if let Some(q) = query_raw {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.push((percent_decode(k)?, percent_decode(v)?));
        }
    }
    Ok((path, query))
}

/// Decodes `%xx` escapes and `+` (as space in query values).
fn percent_decode(s: &str) -> Result<String, HttpError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                if i + 2 >= bytes.len() {
                    return Err(HttpError::BadRequest("truncated percent escape"));
                }
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3])
                    .map_err(|_| HttpError::BadRequest("invalid percent escape"))?;
                let b = u8::from_str_radix(hex, 16)
                    .map_err(|_| HttpError::BadRequest("invalid percent escape"))?;
                out.push(b);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| HttpError::BadRequest("percent escape is not UTF-8"))
}

/// The canonical reason phrase for the status codes the service emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A response to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the always-present framing set.
    pub headers: Vec<(&'static str, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: &crate::json::Json) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.render().into_bytes(),
            content_type: "application/json",
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
            content_type: "text/plain; charset=utf-8",
        }
    }

    /// A JSON error envelope: `{"error": detail}`.
    pub fn error(status: u16, detail: &str) -> Response {
        Response::json(
            status,
            &crate::json::Json::object([("error", crate::json::Json::str(detail))]),
        )
    }

    /// Appends a header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }

    /// Serializes status line, headers and body to `stream`.
    pub fn write_to<W: Write>(&self, stream: &mut W) -> std::io::Result<()> {
        let mut out = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
            out.push_str("\r\n");
        }
        out.push_str("\r\n");
        stream.write_all(out.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut Cursor::new(raw.to_vec()), &HttpLimits::default())
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse(
            b"GET /v1/trace/window?from=10&to=20.5&name=L%2DCSC+x HTTP/1.1\r\nHost: a\r\n\r\n",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/trace/window");
        assert_eq!(req.query_param("from"), Some("10"));
        assert_eq!(req.query_param("to"), Some("20.5"));
        assert_eq!(req.query_param("name"), Some("L-CSC x"));
        assert_eq!(req.header("host"), Some("a"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(b"POST /v1/measure HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body_utf8().unwrap(), "{\"a\":1}");
    }

    #[test]
    fn clean_close_is_none_truncated_is_incomplete() {
        assert_eq!(parse(b"").unwrap(), None);
        assert_eq!(parse(b"GET / HT").unwrap_err(), HttpError::Incomplete);
        assert_eq!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err(),
            HttpError::Incomplete
        );
    }

    #[test]
    fn malformed_requests_are_400() {
        for raw in [
            b"BAD_LINE\r\n\r\n".to_vec(),
            b"get / HTTP/1.1\r\n\r\n".to_vec(),
            b"GET  HTTP/1.1\r\n\r\n".to_vec(),
            b"GET / HTTP/2.7\r\n\r\n".to_vec(),
            b"GET / HTTP/1.1 extra\r\n\r\n".to_vec(),
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n".to_vec(),
            b"POST /x HTTP/1.1\r\n\r\n".to_vec(),
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n".to_vec(),
            b"GET /%zz HTTP/1.1\r\n\r\n".to_vec(),
            b"GET /%2 HTTP/1.1\r\n\r\n".to_vec(),
        ] {
            match parse(&raw) {
                Err(HttpError::BadRequest(_)) => {}
                other => panic!("{:?} -> {:?}", String::from_utf8_lossy(&raw), other),
            }
        }
    }

    #[test]
    fn oversized_head_and_body_are_rejected() {
        let limits = HttpLimits {
            max_head_bytes: 64,
            max_body_bytes: 16,
        };
        let huge_head = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(200));
        assert_eq!(
            read_request(&mut Cursor::new(huge_head.into_bytes()), &limits).unwrap_err(),
            HttpError::HeadTooLarge
        );
        let big_body = b"POST /x HTTP/1.1\r\nContent-Length: 1000\r\n\r\n".to_vec();
        assert_eq!(
            read_request(&mut Cursor::new(big_body), &limits).unwrap_err(),
            HttpError::PayloadTooLarge
        );
    }

    #[test]
    fn response_serializes_with_framing_headers() {
        let mut out = Vec::new();
        Response::text(503, "busy")
            .with_header("retry-after", "1")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("content-length: 4\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nbusy"));
    }
}

//! Property tests for the HTTP front door: whatever bytes arrive —
//! malformed, truncated, oversized, or valid-but-weird — the parser
//! answers with a total, bounded verdict (a request, a clean close, or a
//! 4xx-class error) and never panics. The router downstream is equally
//! total over arbitrary paths and bodies.

use power_serve::http::{read_request, HttpLimits, RequestBuffer};
use power_serve::router::route;
use power_serve::state::{ServeConfig, ServeState};
use proptest::prelude::*;
use std::io::{Cursor, Read};

/// A `Read` that hands out the pipelined byte stream in arbitrary
/// segment sizes — the adversarial version of TCP deciding where reads
/// land. After the segment schedule is exhausted it yields the rest in
/// one piece, then EOF.
struct SegmentedReader {
    data: Vec<u8>,
    pos: usize,
    segments: Vec<usize>,
    next_segment: usize,
}

impl SegmentedReader {
    fn new(data: Vec<u8>, segments: Vec<usize>) -> Self {
        SegmentedReader {
            data,
            pos: 0,
            segments,
            next_segment: 0,
        }
    }
}

impl Read for SegmentedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() || buf.is_empty() {
            return Ok(0);
        }
        let segment = self
            .segments
            .get(self.next_segment)
            .copied()
            .unwrap_or(usize::MAX)
            .max(1);
        self.next_segment += 1;
        let n = segment.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn parse(bytes: &[u8]) -> Result<Option<power_serve::http::Request>, power_serve::http::HttpError> {
    read_request(&mut Cursor::new(bytes.to_vec()), &HttpLimits::default())
}

/// Every error the parser can produce maps to a client-side status.
fn assert_client_error(status: u16) {
    assert!(
        matches!(status, 400 | 408 | 413 | 431),
        "unexpected error status {status}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Total over arbitrary byte soup: a verdict, never a panic.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(0u8..=255u8, 0..2048)) {
        match parse(&bytes) {
            Ok(_) => {}
            Err(e) => assert_client_error(e.status()),
        }
    }

    /// Line noise shaped like a request line still parses or 400s.
    #[test]
    fn ascii_noise_never_panics(bytes in prop::collection::vec(32u8..127u8, 1..512)) {
        let mut raw = bytes.clone();
        raw.extend_from_slice(b"\r\n\r\n");
        match parse(&raw) {
            Ok(_) => {}
            Err(e) => assert_client_error(e.status()),
        }
    }

    /// Any truncation of a valid request is an error or a clean close —
    /// never a success and never a hang.
    #[test]
    fn truncated_requests_fail_cleanly(cut in 0usize..96) {
        let full = b"POST /v1/sample-size HTTP/1.1\r\ncontent-length: 34\r\n\r\n{\"lambda\":1,\"cv\":1,\"population\":9}";
        let cut = cut.min(full.len() - 1);
        match parse(&full[..cut]) {
            Ok(None) => assert_eq!(cut, 0, "only an empty prefix is a clean close"),
            Ok(Some(_)) => panic!("truncated request parsed as complete"),
            Err(e) => assert_client_error(e.status()),
        }
    }

    /// Declared bodies larger than the cap are refused with 413 before
    /// the server reads (or allocates) the body.
    #[test]
    fn oversized_bodies_get_413(extra in 1u64..1_000_000) {
        let limits = HttpLimits::default();
        let declared = limits.max_body_bytes as u64 + extra;
        let raw = format!(
            "POST /v1/measure HTTP/1.1\r\ncontent-length: {declared}\r\n\r\n"
        );
        let err = read_request(&mut Cursor::new(raw.into_bytes()), &limits)
            .expect_err("oversized body must be refused");
        prop_assert_eq!(err.status(), 413);
    }

    /// Unbounded header sections are refused with 431.
    #[test]
    fn oversized_heads_get_431(filler in 8192usize..16384) {
        let raw = format!(
            "GET /healthz HTTP/1.1\r\nx-padding: {}\r\n\r\n",
            "a".repeat(filler)
        );
        let err = parse(raw.as_bytes()).expect_err("oversized head must be refused");
        prop_assert_eq!(err.status(), 431);
    }

    /// A POST that never declares a length cannot make the reader wait
    /// for a body that may never come: refused up front with 400.
    #[test]
    fn post_without_content_length_gets_400(path_tail in prop::collection::vec(97u8..123u8, 0..16)) {
        let raw = format!(
            "POST /v1/{} HTTP/1.1\r\nhost: x\r\n\r\n",
            String::from_utf8(path_tail).unwrap()
        );
        let err = parse(raw.as_bytes()).expect_err("missing content-length must be refused");
        prop_assert_eq!(err.status(), 400);
    }

    /// Connection lifecycle: any split of N pipelined requests across
    /// arbitrary TCP segment boundaries yields exactly N parsed
    /// requests, in order, with bodies intact — the carry buffer never
    /// loses or reorders over-read bytes.
    #[test]
    fn pipelined_segmentation_yields_all_requests_in_order(
        posts in prop::collection::vec(prop::bool::ANY, 1..8),
        segments in prop::collection::vec(1usize..64, 0..64),
    ) {
        let mut raw = Vec::new();
        for (i, post) in posts.iter().enumerate() {
            if *post {
                let body = format!("{{\"i\":{i}}}");
                raw.extend_from_slice(
                    format!(
                        "POST /r/{i} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
                        body.len()
                    )
                    .as_bytes(),
                );
            } else {
                raw.extend_from_slice(
                    format!("GET /r/{i}?q={i} HTTP/1.1\r\nhost: x\r\n\r\n").as_bytes(),
                );
            }
        }
        let mut reader = SegmentedReader::new(raw, segments);
        let mut buffer = RequestBuffer::new();
        let limits = HttpLimits::default();
        for (i, post) in posts.iter().enumerate() {
            let request = buffer
                .next_request(&mut reader, &limits)
                .expect("pipelined request parses")
                .expect("pipelined request present");
            prop_assert_eq!(request.path, format!("/r/{i}"));
            if *post {
                prop_assert_eq!(
                    request.body_utf8().unwrap(),
                    format!("{{\"i\":{i}}}")
                );
            } else {
                let want = format!("{i}");
                prop_assert_eq!(request.query_param("q"), Some(want.as_str()));
            }
        }
        prop_assert_eq!(buffer.next_request(&mut reader, &limits).unwrap(), None);
    }

    /// The router is total too: arbitrary paths, queries, and JSON-ish
    /// bodies produce a response with a sensible status, never a panic.
    #[test]
    fn router_is_total_over_arbitrary_requests(
        path in prop::collection::vec(33u8..127u8, 0..64),
        body in prop::collection::vec(32u8..127u8, 0..128),
        post in prop::bool::ANY,
    ) {
        let state = ServeState::new(ServeConfig { max_nodes: 32, ..ServeConfig::default() });
        let path: String = String::from_utf8(path).unwrap().replace(' ', "");
        let body = String::from_utf8(body).unwrap();
        let raw = if post {
            format!(
                "POST /{path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
                body.len()
            )
        } else {
            format!("GET /{path} HTTP/1.1\r\n\r\n")
        };
        if let Ok(Some(request)) = parse(raw.as_bytes()) {
            let (_, response) = route(&state, &request);
            prop_assert!(
                (200..=599).contains(&response.status),
                "status {} for {raw:?}",
                response.status
            );
        }
    }
}

//! Loopback integration tests for the fleet layer: campaign CRUD and
//! the live leaderboard over real sockets, the background fleet driver
//! racing HTTP reads, the campaign-mode load generator's double-entry
//! reconciliation, and crash-restart resume through the journalled
//! store directory.

use power_serve::loadgen::{self, CampaignLoadPlan, PooledClient};
use power_serve::server::{Server, ServerConfig};
use power_serve::state::{ServeConfig, ServeState};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(10);

fn json(body: &str) -> power_serve::json::Json {
    power_serve::json::Json::parse(body).expect("well-formed JSON body")
}

fn start_with(config: ServeConfig, pace: Duration) -> Server {
    let state = Arc::new(ServeState::try_new(config).expect("state"));
    Server::start(
        ServerConfig {
            workers: 2,
            fleet_pace: pace,
            ..ServerConfig::default()
        },
        state,
    )
    .expect("bind loopback")
}

/// The load generator's campaign mode against a live server: every
/// campaign created over HTTP runs to its stopping rule under the
/// background driver, lands on the leaderboard with a CI, and the
/// plane's conservation law read back from `/metrics` balances.
#[test]
fn campaign_load_run_reconciles_every_ledger() {
    let server = start_with(ServeConfig::default(), Duration::ZERO);
    let plan = CampaignLoadPlan {
        campaigns: 120,
        population: 64,
        samples_per_node: 8,
        batch: 50,
        ..CampaignLoadPlan::default()
    };
    let report = loadgen::run_campaigns(server.local_addr(), &plan).expect("campaign run");
    assert_eq!(report.created, 120, "{report}");
    assert!(report.complete(), "{report}");
    assert!(report.conserved(), "{report}");
    assert_eq!(report.pending, 0, "idle fleet holds no pending samples");
    // Every campaign meters at least the rule's two-node minimum.
    assert!(report.offered >= 120 * 2 * 8, "{report}");
    server.shutdown();
}

/// While the driver is pacing campaigns (kept deliberately slow), the
/// leaderboard and status endpoints serve consistent in-flight reads:
/// live rows move, ranks stay contiguous, and the campaign gauge family
/// tracks the roster.
#[test]
fn live_leaderboard_serves_in_flight_campaigns() {
    let server = start_with(ServeConfig::default(), Duration::from_millis(2));
    let addr = server.local_addr();
    let mut client = PooledClient::new(addr, TIMEOUT);

    let body = r#"{"name": "inflight", "population": 4000, "samples_per_node": 8,
                   "lambda": 0.002, "count": 8}"#;
    let raw = loadgen::post_request_keep_alive("/v1/campaigns", body);
    let resp = client.request(&raw).expect("create");
    assert_eq!(resp.status, 201, "{}", resp.body);

    // Catch the fleet mid-flight at least once before it finishes.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut saw_live_row = false;
    loop {
        let resp = client
            .request(&loadgen::get_request_keep_alive("/v1/leaderboard"))
            .expect("leaderboard");
        assert_eq!(resp.status, 200);
        let board = json(&resp.body);
        let live = board.get("live").unwrap().as_u64().unwrap();
        let rows = board.get("rows").unwrap().as_array().unwrap();
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.get("rank").unwrap().as_u64(), Some(i as u64 + 1));
        }
        if live > 0 && !rows.is_empty() {
            saw_live_row = true;
            let resp = client
                .request(&loadgen::get_request_keep_alive("/metrics"))
                .expect("metrics");
            assert!(resp.body.contains("power_serve_campaigns{state=\"live\"}"));
        }
        if live == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "fleet never went idle");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(saw_live_row, "paced fleet should be observable in flight");

    let resp = client
        .request(&loadgen::get_request_keep_alive("/v1/leaderboard?limit=3"))
        .expect("final leaderboard");
    let board = json(&resp.body);
    let rows = board.get("rows").unwrap().as_array().unwrap();
    assert_eq!(rows.len(), 3);
    for row in rows {
        assert!(
            !matches!(
                row.get("ci_gflops_per_w").unwrap(),
                power_serve::json::Json::Null
            ),
            "finished campaigns carry efficiency CIs"
        );
    }
    server.shutdown();
}

/// Kill-and-restart through the store directory: a server stopped with
/// campaigns finished resumes every one of them from `fleet.wal`, with
/// identical estimates, and the roster survives a further delete.
#[test]
fn store_dir_restart_resumes_the_fleet() {
    let dir = tempdir();
    let first = start_with(
        ServeConfig {
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
        Duration::ZERO,
    );
    let addr = first.local_addr();
    let mut client = PooledClient::new(addr, TIMEOUT);
    let body = r#"{"name": "durable", "population": 96, "samples_per_node": 8, "count": 12}"#;
    let resp = client
        .request(&loadgen::post_request_keep_alive("/v1/campaigns", body))
        .expect("create");
    assert_eq!(resp.status, 201, "{}", resp.body);

    // Wait for the driver to finish all 12, then snapshot their means.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let resp = client
            .request(&loadgen::get_request_keep_alive("/v1/leaderboard?limit=1"))
            .expect("poll");
        if json(&resp.body).get("live").unwrap().as_u64() == Some(0) {
            break;
        }
        assert!(Instant::now() < deadline, "fleet never went idle");
        std::thread::sleep(Duration::from_millis(20));
    }
    let resp = client
        .request(&loadgen::get_request_keep_alive("/v1/leaderboard?limit=0"))
        .expect("board");
    let before = resp.body.clone();
    client.disconnect();
    first.shutdown();

    // A fresh process on the same store directory: every campaign is
    // back, already finished (resumed at its watermark), and the
    // leaderboard is bit-identical.
    let second = start_with(
        ServeConfig {
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
        Duration::ZERO,
    );
    let mut client = PooledClient::new(second.local_addr(), TIMEOUT);
    let resp = client
        .request(&loadgen::get_request_keep_alive("/v1/campaigns"))
        .expect("roster");
    let roster = json(&resp.body);
    assert_eq!(roster.get("total").unwrap().as_u64(), Some(12));
    for c in roster.get("campaigns").unwrap().as_array().unwrap() {
        assert_eq!(c.get("state").unwrap().as_str(), Some("stopped"));
    }
    let resp = client
        .request(&loadgen::get_request_keep_alive("/v1/leaderboard?limit=0"))
        .expect("board");
    assert_eq!(resp.body, before, "resumed ranking must match exactly");

    // Deletes are durable too.
    let top_id = json(&before).get("rows").unwrap().as_array().unwrap()[0]
        .get("id")
        .unwrap()
        .as_u64()
        .unwrap();
    let raw = format!("DELETE /v1/campaigns/{top_id} HTTP/1.1\r\nconnection: keep-alive\r\n\r\n");
    let resp = client.request(raw.as_bytes()).expect("delete");
    assert_eq!(resp.status, 200);
    client.disconnect();
    second.shutdown();

    let third = start_with(
        ServeConfig {
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
        Duration::ZERO,
    );
    let mut client = PooledClient::new(third.local_addr(), TIMEOUT);
    let resp = client
        .request(&loadgen::get_request_keep_alive("/v1/campaigns"))
        .expect("roster");
    assert_eq!(json(&resp.body).get("total").unwrap().as_u64(), Some(11));
    client.disconnect();
    third.shutdown();

    std::fs::remove_dir_all(&dir).ok();
}

fn tempdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "power-serve-fleet-api-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

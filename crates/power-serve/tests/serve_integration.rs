//! Loopback integration tests for the serving layer: concurrent clients
//! over every endpoint, request coalescing through the shared trace
//! store, saturation backpressure with conserved accounting, and
//! graceful shutdown draining in-flight work.

use power_serve::loadgen::{self, LoadPlan};
use power_serve::server::{Server, ServerConfig};
use power_serve::state::{ServeConfig, ServeState};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(10);

fn small_state() -> Arc<ServeState> {
    Arc::new(ServeState::new(ServeConfig {
        max_nodes: 64,
        ..ServeConfig::default()
    }))
}

fn start(config: ServerConfig) -> Server {
    Server::start(config, small_state()).expect("bind loopback")
}

/// One request per endpoint, issued from many threads at once; every
/// response must be well-formed and the admission ledger must balance.
#[test]
fn eight_concurrent_clients_cover_all_six_endpoints() {
    let server = start(ServerConfig {
        workers: 4,
        queue_depth: 64,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let measure_body =
        r#"{"system": "L-CSC", "nodes": 16, "dt": 120, "seed": 3, "methodology": "revised"}"#;
    let sample_body = r#"{"lambda": 0.01, "cv": 0.05, "population": 5000}"#;
    let requests: Vec<(Vec<u8>, u16)> = vec![
        (loadgen::get_request("/healthz"), 200),
        (loadgen::get_request("/metrics"), 200),
        (loadgen::get_request("/v1/systems"), 200),
        (loadgen::post_request("/v1/sample-size", sample_body), 200),
        (loadgen::post_request("/v1/measure", measure_body), 200),
        (
            loadgen::get_request("/v1/trace/window?system=L-CSC&nodes=16&dt=120&from=600&to=3000"),
            200,
        ),
    ];

    let threads = 8;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let requests = requests.clone();
            std::thread::spawn(move || {
                for (raw, want) in &requests {
                    let (status, body) =
                        loadgen::http_request(addr, raw, TIMEOUT).expect("request completes");
                    assert_eq!(status, *want, "{body}");
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }

    // All 8 identical /v1/measure requests and all 8 identical trace
    // windows map to at most two distinct sweeps; single-flight plus the
    // cache guarantee nothing ran twice.
    let state = server.state();
    assert!(
        state.store.misses() <= 2,
        "48 requests must not trigger more than 2 sweeps, saw {}",
        state.store.misses()
    );
    assert!(state.store.hits() >= 14, "repeat queries served from cache");

    let admission = state.metrics.admission();
    assert!(admission.conserved(), "{admission:?}");
    assert_eq!(admission.offered, (threads * requests.len()) as u64);
    assert_eq!(admission.rejected, 0);
    server.shutdown();
}

/// The tentpole coalescing guarantee, end to end over TCP: identical
/// concurrent uncached /v1/measure requests produce exactly one
/// simulation sweep.
#[test]
fn identical_concurrent_measures_coalesce_to_one_sweep() {
    let server = start(ServerConfig {
        workers: 8,
        queue_depth: 32,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let body = r#"{"system": "Colosse", "nodes": 24, "dt": 60, "seed": 11}"#;

    let handles: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let raw = loadgen::post_request("/v1/measure", body);
                loadgen::http_request(addr, &raw, TIMEOUT).expect("measure completes")
            })
        })
        .collect();
    let responses: Vec<(u16, String)> = handles
        .into_iter()
        .map(|h| h.join().expect("client"))
        .collect();

    let reference = &responses[0].1;
    for (status, body) in &responses {
        assert_eq!(*status, 200, "{body}");
        assert_eq!(body, reference, "identical requests get identical answers");
    }
    let state = server.state();
    assert_eq!(state.store.misses(), 1, "exactly one simulation ran");
    assert_eq!(state.store.hits(), 7, "the other seven were served from it");
    server.shutdown();
}

/// With one worker pinned and a queue of one, further connections are
/// turned away with `503` + `Retry-After`, the ledger still balances,
/// and service resumes once the pressure lifts.
#[test]
fn saturation_rejects_with_503_and_recovers() {
    let server = start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        read_timeout: Duration::from_secs(20),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    // Pin the only worker: an idle connection it will sit on reading.
    let pin_worker = TcpStream::connect(addr).expect("pin connection");
    std::thread::sleep(Duration::from_millis(300));
    // Fill the queue's single slot.
    let fill_queue = TcpStream::connect(addr).expect("queue filler");
    std::thread::sleep(Duration::from_millis(300));

    // Everything beyond capacity is rejected, with the retry hint.
    let mut saw_503 = 0;
    for _ in 0..4 {
        let mut stream = TcpStream::connect(addr).expect("overflow connection");
        stream.set_read_timeout(Some(TIMEOUT)).unwrap();
        stream
            .write_all(&loadgen::get_request("/healthz"))
            .expect("write");
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).expect("read 503");
        let text = String::from_utf8_lossy(&raw);
        assert!(text.starts_with("HTTP/1.1 503 "), "{text}");
        assert!(text.contains("retry-after: 1"), "{text}");
        saw_503 += 1;
    }
    assert_eq!(saw_503, 4);

    // Release the pinned connections; the worker sees EOF and moves on.
    drop(pin_worker);
    drop(fill_queue);
    std::thread::sleep(Duration::from_millis(300));

    let (status, _) = loadgen::http_request(addr, &loadgen::get_request("/healthz"), TIMEOUT)
        .expect("service recovered");
    assert_eq!(status, 200);

    let admission = server.state().metrics.admission();
    assert!(admission.conserved(), "{admission:?}");
    // 2 pinned + 4 rejected + 1 recovery probe.
    assert_eq!(admission.offered, 7);
    assert_eq!(admission.rejected, 4);
    assert_eq!(admission.accepted, 3);
    server.shutdown();
}

/// Shutdown must drain: a request already admitted — even one whose body
/// is still arriving — gets its answer before the threads exit, and the
/// port stops accepting afterwards.
#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let server = start(ServerConfig {
        workers: 2,
        queue_depth: 8,
        read_timeout: Duration::from_secs(20),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let body = r#"{"lambda": 0.01, "cv": 0.05, "population": 5000}"#;
    let raw = loadgen::post_request("/v1/sample-size", body);
    // Send everything but the last 10 bytes, so the worker is mid-read.
    let split = raw.len() - 10;
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(TIMEOUT)).unwrap();
    stream.write_all(&raw[..split]).expect("write head");
    std::thread::sleep(Duration::from_millis(300));

    let shutdown = std::thread::spawn(move || server.shutdown());
    std::thread::sleep(Duration::from_millis(300));

    // The drain must wait for this request to finish, then answer it.
    stream.write_all(&raw[split..]).expect("write tail");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8_lossy(&response);
    assert!(
        text.starts_with("HTTP/1.1 200 "),
        "in-flight request answered during drain: {text}"
    );
    assert!(text.contains("\"required_nodes\""), "{text}");
    shutdown.join().expect("shutdown completes");

    // The listener is gone: new connections are refused (or immediately
    // closed if they raced into the final backlog).
    match loadgen::http_request(
        addr,
        &loadgen::get_request("/healthz"),
        Duration::from_secs(2),
    ) {
        Err(_) => {}
        Ok((status, _)) => panic!("server answered after shutdown with {status}"),
    }
}

/// Satellite 6: the load generator's client-side ledger and the server's
/// `/metrics` admission counters describe the same world.
#[test]
fn loadgen_and_metrics_agree_on_totals() {
    let server = start(ServerConfig {
        workers: 2,
        queue_depth: 8,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let plan = LoadPlan {
        threads: 8,
        requests_per_thread: 24,
        targets: vec![
            loadgen::get_request("/healthz"),
            loadgen::get_request("/v1/systems"),
            loadgen::post_request(
                "/v1/sample-size",
                r#"{"lambda": 0.02, "cv": 0.1, "population": 2000}"#,
            ),
        ],
        timeout: TIMEOUT,
    };
    let report = loadgen::run(addr, &plan);
    assert!(report.conserved(), "{report}");
    assert_eq!(report.offered, 8 * 24);
    assert_eq!(
        report.failed, 0,
        "loopback transport must not fail: {report}"
    );
    assert_eq!(report.error_status, 0, "all requests are valid: {report}");

    let (status, page) =
        loadgen::http_request(addr, &loadgen::get_request("/metrics"), TIMEOUT).expect("metrics");
    assert_eq!(status, 200);
    let offered = metric(&page, "power_serve_admission_total{outcome=\"offered\"}");
    let accepted = metric(&page, "power_serve_admission_total{outcome=\"accepted\"}");
    let rejected = metric(&page, "power_serve_admission_total{outcome=\"rejected\"}");

    // The /metrics connection itself is admitted (and counted) before the
    // page renders, so the page includes it.
    assert_eq!(offered, accepted + rejected, "server-side conservation");
    assert_eq!(offered, report.offered + 1, "one ledger, both sides");
    assert_eq!(rejected, report.rejected);
    assert_eq!(accepted, report.succeeded + 1);
    server.shutdown();
}

fn metric(page: &str, series: &str) -> u64 {
    page.lines()
        .find_map(|line| line.strip_prefix(series))
        .and_then(|rest| rest.trim().parse().ok())
        .unwrap_or_else(|| panic!("series {series} missing from:\n{page}"))
}

//! Loopback integration tests for the serving layer: concurrent clients
//! over every endpoint, request coalescing through the shared trace
//! store, saturation backpressure with conserved accounting, the
//! keep-alive connection lifecycle (pipelining, idle expiry,
//! drain-during-keep-alive, per-connection caps), and graceful shutdown
//! draining in-flight work.

use power_serve::loadgen::{self, LoadPlan, PooledClient};
use power_serve::server::{Server, ServerConfig};
use power_serve::state::{ServeConfig, ServeState};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(10);

fn small_state() -> Arc<ServeState> {
    Arc::new(ServeState::new(ServeConfig {
        max_nodes: 64,
        ..ServeConfig::default()
    }))
}

fn start(config: ServerConfig) -> Server {
    Server::start(config, small_state()).expect("bind loopback")
}

/// One request per endpoint, issued from many threads at once; every
/// response must be well-formed and the admission ledger must balance.
#[test]
fn eight_concurrent_clients_cover_all_six_endpoints() {
    let server = start(ServerConfig {
        workers: 4,
        queue_depth: 64,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let measure_body =
        r#"{"system": "L-CSC", "nodes": 16, "dt": 120, "seed": 3, "methodology": "revised"}"#;
    let sample_body = r#"{"lambda": 0.01, "cv": 0.05, "population": 5000}"#;
    let requests: Vec<(Vec<u8>, u16)> = vec![
        (loadgen::get_request("/healthz"), 200),
        (loadgen::get_request("/metrics"), 200),
        (loadgen::get_request("/v1/systems"), 200),
        (loadgen::post_request("/v1/sample-size", sample_body), 200),
        (loadgen::post_request("/v1/measure", measure_body), 200),
        (
            loadgen::get_request("/v1/trace/window?system=L-CSC&nodes=16&dt=120&from=600&to=3000"),
            200,
        ),
    ];

    let threads = 8;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let requests = requests.clone();
            std::thread::spawn(move || {
                for (raw, want) in &requests {
                    let (status, body) =
                        loadgen::http_request(addr, raw, TIMEOUT).expect("request completes");
                    assert_eq!(status, *want, "{body}");
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }

    // All 8 identical /v1/measure requests and all 8 identical trace
    // windows map to at most two distinct sweeps; single-flight plus the
    // cache guarantee nothing ran twice.
    let state = server.state();
    assert!(
        state.store.misses() <= 2,
        "48 requests must not trigger more than 2 sweeps, saw {}",
        state.store.misses()
    );
    assert!(state.store.hits() >= 14, "repeat queries served from cache");

    let admission = state.metrics.admission();
    assert!(admission.conserved(), "{admission:?}");
    assert_eq!(admission.offered, (threads * requests.len()) as u64);
    assert_eq!(admission.rejected, 0);
    server.shutdown();
}

/// The tentpole coalescing guarantee, end to end over TCP: identical
/// concurrent uncached /v1/measure requests produce exactly one
/// simulation sweep.
#[test]
fn identical_concurrent_measures_coalesce_to_one_sweep() {
    let server = start(ServerConfig {
        workers: 8,
        queue_depth: 32,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let body = r#"{"system": "Colosse", "nodes": 24, "dt": 60, "seed": 11}"#;

    let handles: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let raw = loadgen::post_request("/v1/measure", body);
                loadgen::http_request(addr, &raw, TIMEOUT).expect("measure completes")
            })
        })
        .collect();
    let responses: Vec<(u16, String)> = handles
        .into_iter()
        .map(|h| h.join().expect("client"))
        .collect();

    let reference = &responses[0].1;
    for (status, body) in &responses {
        assert_eq!(*status, 200, "{body}");
        assert_eq!(body, reference, "identical requests get identical answers");
    }
    let state = server.state();
    assert_eq!(state.store.misses(), 1, "exactly one simulation ran");
    assert_eq!(state.store.hits(), 7, "the other seven were served from it");
    server.shutdown();
}

/// With one worker pinned and a queue of one, further connections are
/// turned away with `503` + `Retry-After`, the ledger still balances,
/// and service resumes once the pressure lifts.
#[test]
fn saturation_rejects_with_503_and_recovers() {
    let server = start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        read_timeout: Duration::from_secs(20),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    // Pin the only worker: an idle connection it will sit on reading.
    let pin_worker = TcpStream::connect(addr).expect("pin connection");
    std::thread::sleep(Duration::from_millis(300));
    // Fill the queue's single slot.
    let fill_queue = TcpStream::connect(addr).expect("queue filler");
    std::thread::sleep(Duration::from_millis(300));

    // Everything beyond capacity is rejected, with the retry hint.
    let mut saw_503 = 0;
    for _ in 0..4 {
        let mut stream = TcpStream::connect(addr).expect("overflow connection");
        stream.set_read_timeout(Some(TIMEOUT)).unwrap();
        stream
            .write_all(&loadgen::get_request("/healthz"))
            .expect("write");
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).expect("read 503");
        let text = String::from_utf8_lossy(&raw);
        assert!(text.starts_with("HTTP/1.1 503 "), "{text}");
        assert!(text.contains("retry-after: 1"), "{text}");
        saw_503 += 1;
    }
    assert_eq!(saw_503, 4);

    // Release the pinned connections; the worker sees EOF and moves on.
    drop(pin_worker);
    drop(fill_queue);
    std::thread::sleep(Duration::from_millis(300));

    let (status, _) = loadgen::http_request(addr, &loadgen::get_request("/healthz"), TIMEOUT)
        .expect("service recovered");
    assert_eq!(status, 200);

    let admission = server.state().metrics.admission();
    assert!(admission.conserved(), "{admission:?}");
    // 2 pinned + 4 rejected + 1 recovery probe.
    assert_eq!(admission.offered, 7);
    assert_eq!(admission.rejected, 4);
    assert_eq!(admission.accepted, 3);
    server.shutdown();
}

/// Shutdown must drain: a request already admitted — even one whose body
/// is still arriving — gets its answer before the threads exit, and the
/// port stops accepting afterwards.
#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let server = start(ServerConfig {
        workers: 2,
        queue_depth: 8,
        read_timeout: Duration::from_secs(20),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let body = r#"{"lambda": 0.01, "cv": 0.05, "population": 5000}"#;
    let raw = loadgen::post_request("/v1/sample-size", body);
    // Send everything but the last 10 bytes, so the worker is mid-read.
    let split = raw.len() - 10;
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(TIMEOUT)).unwrap();
    stream.write_all(&raw[..split]).expect("write head");
    std::thread::sleep(Duration::from_millis(300));

    let shutdown = std::thread::spawn(move || server.shutdown());
    std::thread::sleep(Duration::from_millis(300));

    // The drain must wait for this request to finish, then answer it.
    stream.write_all(&raw[split..]).expect("write tail");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8_lossy(&response);
    assert!(
        text.starts_with("HTTP/1.1 200 "),
        "in-flight request answered during drain: {text}"
    );
    assert!(text.contains("\"required_nodes\""), "{text}");
    shutdown.join().expect("shutdown completes");

    // The listener is gone: new connections are refused (or immediately
    // closed if they raced into the final backlog).
    match loadgen::http_request(
        addr,
        &loadgen::get_request("/healthz"),
        Duration::from_secs(2),
    ) {
        Err(_) => {}
        Ok((status, _)) => panic!("server answered after shutdown with {status}"),
    }
}

/// Keep-alive: one connection serves many sequential requests; the
/// admission ledger counts 1 connection while the endpoint counters see
/// them all, and the per-connection cap closes the connection with
/// `connection: close` exactly at the limit.
#[test]
fn one_connection_serves_sequential_requests_until_the_cap() {
    let server = start(ServerConfig {
        workers: 2,
        queue_depth: 8,
        max_requests_per_connection: 5,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let mut client = PooledClient::new(addr, TIMEOUT);
    for i in 0..5 {
        let response = client
            .request(&loadgen::get_request_keep_alive("/healthz"))
            .expect("keep-alive request");
        assert_eq!(response.status, 200);
        let expect_kept = i < 4;
        assert_eq!(
            response.kept_alive, expect_kept,
            "request {i}: the 5th response must advertise close"
        );
    }
    assert_eq!(client.connections(), 1, "five requests, one connection");

    // The 6th request transparently reconnects.
    let response = client
        .request(&loadgen::get_request_keep_alive("/healthz"))
        .expect("post-cap request");
    assert_eq!(response.status, 200);
    assert_eq!(client.connections(), 2);

    let admission = server.state().metrics.admission();
    assert!(admission.conserved(), "{admission:?}");
    assert_eq!(admission.offered, 2, "admission counts connections");
    assert_eq!(
        server
            .state()
            .metrics
            .requests(power_serve::Endpoint::Healthz),
        6,
        "endpoint counters count requests"
    );
    server.shutdown();
}

/// Pipelining over real TCP: requests written back-to-back (and split at
/// odd byte boundaries) on one connection all get answered, in order.
#[test]
fn pipelined_requests_over_one_tcp_connection_answer_in_order() {
    let server = start(ServerConfig {
        workers: 1,
        queue_depth: 8,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    // Five keep-alive sample-size POSTs with distinct populations, then
    // a closing healthz so read_to_end terminates.
    let populations = [1000u64, 2000, 3000, 4000, 5000];
    let mut raw = Vec::new();
    for population in populations {
        raw.extend_from_slice(&loadgen::post_request_keep_alive(
            "/v1/sample-size",
            &format!(r#"{{"lambda": 0.01, "cv": 0.05, "population": {population}}}"#),
        ));
    }
    raw.extend_from_slice(&loadgen::get_request("/healthz"));

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(TIMEOUT)).unwrap();
    // Write in deliberately awkward segments so request heads and bodies
    // straddle read boundaries server-side.
    for chunk in raw.chunks(97) {
        stream.write_all(chunk).expect("write segment");
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read responses");
    let text = String::from_utf8_lossy(&response);

    let answers = text.matches("HTTP/1.1 200 OK").count();
    assert_eq!(answers, 6, "every pipelined request is answered:\n{text}");
    // Responses come back in request order.
    let mut last = 0;
    for population in populations {
        let needle = format!("\"population\":{population}");
        let at = text[last..]
            .find(&needle)
            .unwrap_or_else(|| panic!("{needle} missing or out of order:\n{text}"));
        last += at;
    }

    let admission = server.state().metrics.admission();
    assert!(admission.conserved(), "{admission:?}");
    assert_eq!(admission.offered, 1, "six requests, one connection");
    server.shutdown();
}

/// An idle keep-alive connection is silently closed once the idle
/// timeout expires; the pooled client notices and reconnects.
#[test]
fn idle_keep_alive_connection_expires_and_client_reconnects() {
    let server = start(ServerConfig {
        workers: 2,
        queue_depth: 8,
        idle_timeout: Duration::from_millis(150),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let mut client = PooledClient::new(addr, TIMEOUT);
    let first = client
        .request(&loadgen::get_request_keep_alive("/healthz"))
        .expect("first request");
    assert_eq!(first.status, 200);
    assert!(first.kept_alive);
    assert_eq!(client.connections(), 1);

    std::thread::sleep(Duration::from_millis(600));

    let second = client
        .request(&loadgen::get_request_keep_alive("/healthz"))
        .expect("request after idle expiry");
    assert_eq!(second.status, 200);
    assert_eq!(
        client.connections(),
        2,
        "the expired connection was replaced"
    );
    server.shutdown();
}

/// Drain during keep-alive: a connection mid-session when shutdown
/// begins gets its in-flight request answered — with
/// `connection: close` — and the connection then closes.
#[test]
fn drain_during_keep_alive_finishes_the_request_then_closes() {
    let server = start(ServerConfig {
        workers: 1,
        queue_depth: 4,
        idle_timeout: Duration::from_secs(10),
        read_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let mut client = PooledClient::new(addr, TIMEOUT);
    let first = client
        .request(&loadgen::get_request_keep_alive("/healthz"))
        .expect("pre-drain request");
    assert_eq!(first.status, 200);
    assert!(first.kept_alive, "session is alive before the drain");

    let state = Arc::clone(server.state());
    let shutdown = std::thread::spawn(move || server.shutdown());
    std::thread::sleep(Duration::from_millis(300));

    // The worker is parked waiting for this connection's next request;
    // the drain must let it finish and must mark the response `close`.
    let second = client
        .request(&loadgen::get_request_keep_alive("/healthz"))
        .expect("in-flight request during drain");
    assert_eq!(second.status, 200);
    assert!(
        !second.kept_alive,
        "a response written during drain advertises close"
    );
    shutdown.join().expect("shutdown completes");

    let admission = state.metrics.admission();
    assert!(admission.conserved(), "{admission:?}");
    assert_eq!(admission.offered, 1);
    assert_eq!(
        state.metrics.connection_requests_sum(),
        2,
        "both requests served on the drained connection"
    );

    match loadgen::http_request(
        addr,
        &loadgen::get_request("/healthz"),
        Duration::from_secs(2),
    ) {
        Err(_) => {}
        Ok((status, _)) => panic!("server answered after drain with {status}"),
    }
}

/// The keep-alive loadgen against a healthy server: the request ledger
/// balances, the connection ledger matches the server's admission
/// counters, and every request is served exactly once.
#[test]
fn keep_alive_loadgen_conserves_both_ledgers() {
    let server = start(ServerConfig {
        workers: 4,
        queue_depth: 64,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let threads = 8u64;
    let per_thread = 64u64;
    let report = loadgen::run(
        addr,
        &LoadPlan {
            threads: threads as usize,
            requests_per_thread: per_thread as usize,
            targets: vec![
                loadgen::get_request_keep_alive("/healthz"),
                loadgen::get_request_keep_alive("/v1/systems"),
            ],
            timeout: TIMEOUT,
            keep_alive: true,
            retry_rejected: 0,
        },
    );
    assert!(report.conserved(), "{report}");
    assert_eq!(report.offered, threads * per_thread);
    assert_eq!(report.succeeded, threads * per_thread, "{report}");
    assert_eq!(report.failed, 0, "{report}");
    assert!(
        report.connections >= threads && report.connections <= 2 * threads,
        "8 persistent clients should use ~8 connections: {report}"
    );

    let state = Arc::clone(server.state());
    let admission = state.metrics.admission();
    assert!(admission.conserved(), "{admission:?}");
    assert_eq!(
        admission.offered, report.connections,
        "server connections == client connections"
    );
    assert_eq!(admission.rejected, 0);

    // After shutdown every connection has closed and been recorded:
    // the per-connection request counters account for every request.
    server.shutdown();
    assert_eq!(state.metrics.connections_closed(), report.connections);
    assert_eq!(state.metrics.connection_requests_sum(), report.offered);
}

/// Saturation with retry: rejected requests back off per `Retry-After`
/// and try again; a retried request is still classified exactly once,
/// and every retry attempt shows up as a fresh connection on both
/// ledgers.
#[test]
fn rejected_requests_retry_and_the_ledger_stays_exact() {
    let server = Server::start(
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            read_timeout: Duration::from_secs(1),
            retry_after_s: 0,
            ..ServerConfig::default()
        },
        small_state(),
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // Pin the only worker so early arrivals overflow the 1-slot queue
    // and get 503s; the pin releases when its read times out (1s).
    let pin_worker = TcpStream::connect(addr).expect("pin connection");
    std::thread::sleep(Duration::from_millis(200));

    let threads = 4u64;
    let per_thread = 8u64;
    let report = loadgen::run(
        addr,
        &LoadPlan {
            threads: threads as usize,
            requests_per_thread: per_thread as usize,
            targets: vec![loadgen::get_request("/healthz")],
            timeout: TIMEOUT,
            keep_alive: false,
            retry_rejected: 100,
        },
    );
    drop(pin_worker);

    assert!(report.conserved(), "{report}");
    assert_eq!(
        report.offered,
        threads * per_thread,
        "retries must not inflate offered: {report}"
    );
    assert!(report.retries > 0, "saturation must have forced retries");
    assert_eq!(
        report.connections,
        report.offered + report.retries,
        "cold mode: one connection per attempt: {report}"
    );
    assert_eq!(report.failed, 0, "{report}");

    let admission = server.state().metrics.admission();
    assert!(admission.conserved(), "{admission:?}");
    // The pin connection plus every client attempt.
    assert_eq!(admission.offered, 1 + report.connections);
    server.shutdown();
}

/// Satellite 6: the load generator's client-side ledger and the server's
/// `/metrics` admission counters describe the same world.
#[test]
fn loadgen_and_metrics_agree_on_totals() {
    let server = start(ServerConfig {
        workers: 2,
        queue_depth: 8,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let plan = LoadPlan {
        threads: 8,
        requests_per_thread: 24,
        targets: vec![
            loadgen::get_request("/healthz"),
            loadgen::get_request("/v1/systems"),
            loadgen::post_request(
                "/v1/sample-size",
                r#"{"lambda": 0.02, "cv": 0.1, "population": 2000}"#,
            ),
        ],
        timeout: TIMEOUT,
        ..LoadPlan::default()
    };
    let report = loadgen::run(addr, &plan);
    assert!(report.conserved(), "{report}");
    assert_eq!(report.offered, 8 * 24);
    assert_eq!(
        report.failed, 0,
        "loopback transport must not fail: {report}"
    );
    assert_eq!(report.error_status, 0, "all requests are valid: {report}");

    let (status, page) =
        loadgen::http_request(addr, &loadgen::get_request("/metrics"), TIMEOUT).expect("metrics");
    assert_eq!(status, 200);
    let offered = metric(&page, "power_serve_admission_total{outcome=\"offered\"}");
    let accepted = metric(&page, "power_serve_admission_total{outcome=\"accepted\"}");
    let rejected = metric(&page, "power_serve_admission_total{outcome=\"rejected\"}");

    // The /metrics connection itself is admitted (and counted) before the
    // page renders, so the page includes it.
    assert_eq!(offered, accepted + rejected, "server-side conservation");
    assert_eq!(offered, report.offered + 1, "one ledger, both sides");
    assert_eq!(rejected, report.rejected);
    assert_eq!(accepted, report.succeeded + 1);
    server.shutdown();
}

fn metric(page: &str, series: &str) -> u64 {
    page.lines()
        .find_map(|line| line.strip_prefix(series))
        .and_then(|rest| rest.trim().parse().ok())
        .unwrap_or_else(|| panic!("series {series} missing from:\n{page}"))
}

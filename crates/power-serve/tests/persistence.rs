//! Restart persistence: with `store_dir` configured, a sweep computed by
//! one server process is served **from the on-disk archive** — not
//! recomputed — by the next process, and a warm start pre-populates the
//! memory tier so the first request is a pure memory hit.

use power_serve::loadgen;
use power_serve::server::{Server, ServerConfig};
use power_serve::state::{ServeConfig, ServeState};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(10);

fn state_with_store(dir: &Path, warm: bool) -> Arc<ServeState> {
    Arc::new(
        ServeState::try_new(ServeConfig {
            max_nodes: 64,
            store_dir: Some(dir.to_path_buf()),
            warm_on_start: warm,
            ..ServeConfig::default()
        })
        .expect("archive opens"),
    )
}

fn start(state: Arc<ServeState>) -> Server {
    Server::start(
        ServerConfig {
            workers: 2,
            queue_depth: 16,
            ..ServerConfig::default()
        },
        state,
    )
    .expect("bind loopback")
}

fn metric(page: &str, series: &str) -> u64 {
    page.lines()
        .find_map(|line| line.strip_prefix(series))
        .and_then(|rest| rest.trim().parse().ok())
        .unwrap_or_else(|| panic!("series {series} missing from:\n{page}"))
}

fn field(body: &str, name: &str) -> f64 {
    let needle = format!("\"{name}\":");
    let at = body
        .find(&needle)
        .unwrap_or_else(|| panic!("{name} missing from {body}"));
    let rest = &body[at + needle.len()..];
    let end = rest.find([',', '}']).expect("value terminator");
    rest[..end].parse().expect("numeric field")
}

#[test]
fn sweep_survives_restart_and_serves_from_archive() {
    let dir = std::env::temp_dir().join(format!("power-serve-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let body =
        r#"{"system": "L-CSC", "nodes": 16, "dt": 120, "seed": 3, "methodology": "revised"}"#;
    let measure = loadgen::post_request("/v1/measure", body);

    // Process 1: a cold store computes the sweep and writes it through
    // to the archive.
    let answer1;
    {
        let server = start(state_with_store(&dir, true));
        let (status, text) =
            loadgen::http_request(server.local_addr(), &measure, TIMEOUT).expect("measure");
        assert_eq!(status, 200, "{text}");
        answer1 = text;
        let state = server.state();
        assert_eq!(state.warmed, 0, "nothing to warm from a fresh archive");
        assert_eq!(state.store.misses(), 1);
        assert_eq!(state.store.archive_writes(), 1, "sweep written through");
        let (status, page) = loadgen::http_request(
            server.local_addr(),
            &loadgen::get_request("/metrics"),
            TIMEOUT,
        )
        .expect("metrics");
        assert_eq!(status, 200);
        assert_eq!(
            metric(&page, "power_serve_store_total{outcome=\"archive_writes\"}"),
            1
        );
        assert!(metric(&page, "power_serve_archive_entries") >= 1);
        server.shutdown();
    }

    // Process 2: same directory, no warm-on-start — the identical
    // request is served by the disk tier, with zero recomputation.
    // Archived traces are quantized (~1 mW), so the answer agrees with
    // the original to within quantization, not bitwise.
    let answer2;
    {
        let server = start(state_with_store(&dir, false));
        let (status, text) =
            loadgen::http_request(server.local_addr(), &measure, TIMEOUT).expect("measure");
        assert_eq!(status, 200, "{text}");
        let live = field(&answer1, "reported_power_w");
        let archived = field(&text, "reported_power_w");
        assert!(
            ((live - archived) / live).abs() < 1e-6,
            "restart answer within quantization: {live} vs {archived}"
        );
        assert_eq!(field(&text, "metered_nodes"), 16.0, "{text}");
        answer2 = text;
        let state = server.state();
        assert_eq!(state.store.misses(), 0, "no recompute after restart");
        assert_eq!(state.store.archive_hits(), 1, "served from the archive");
        let (status, page) = loadgen::http_request(
            server.local_addr(),
            &loadgen::get_request("/metrics"),
            TIMEOUT,
        )
        .expect("metrics");
        assert_eq!(status, 200);
        assert_eq!(
            metric(&page, "power_serve_store_total{outcome=\"archive_hits\"}"),
            1
        );
        assert_eq!(metric(&page, "power_serve_archive_warmed"), 0);
        server.shutdown();
    }

    // Process 3: warm start loads the sweep into the memory tier before
    // the first request, which is then a pure memory hit.
    {
        let server = start(state_with_store(&dir, true));
        let state = Arc::clone(server.state());
        assert!(state.warmed >= 1, "archive warms the memory tier");
        let (status, text) =
            loadgen::http_request(server.local_addr(), &measure, TIMEOUT).expect("measure");
        assert_eq!(status, 200, "{text}");
        assert_eq!(
            text, answer2,
            "both archive-backed processes decode the same blob"
        );
        assert_eq!(state.store.misses(), 0);
        assert_eq!(state.store.hits(), 1);
        assert_eq!(state.store.archive_hits(), 0, "warmed, not faulted in");
        let (status, page) = loadgen::http_request(
            server.local_addr(),
            &loadgen::get_request("/metrics"),
            TIMEOUT,
        )
        .expect("metrics");
        assert_eq!(status, 200);
        assert!(metric(&page, "power_serve_archive_warmed") >= 1);
        server.shutdown();
    }

    std::fs::remove_dir_all(&dir).unwrap();
}

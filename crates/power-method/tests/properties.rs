//! Property-based tests for methodology rules.

use proptest::prelude::*;

use power_method::fraction::FractionRule;
use power_method::level::Methodology;
use power_method::window::TimingRule;
use power_workload::RunPhases;

fn arb_phases() -> impl Strategy<Value = RunPhases> {
    (0.0..500.0f64, 120.0..50_000.0f64, 0.0..500.0f64)
        .prop_map(|(s, c, t)| RunPhases::new(s, c, t).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn level1_window_always_legal(phases in arb_phases(), placement in 0.0..=1.0f64) {
        let rule = TimingRule::level1();
        let w = rule.windows(&phases, placement).unwrap();
        prop_assert_eq!(w.len(), 1);
        let (a, b) = w[0];
        let (lo, hi) = phases.core_middle_80();
        prop_assert!(a >= lo - 1e-9);
        prop_assert!(b <= hi + 1e-9);
        // Window length: the longer of 60 s or 20% of the middle 80%
        // (clipped when the whole middle 80% is shorter than a minute).
        let want = rule.window_length(&phases).min(hi - lo);
        prop_assert!((b - a - want).abs() < 1e-9);
    }

    #[test]
    fn level2_segments_tile_core(phases in arb_phases()) {
        let w = TimingRule::level2().windows(&phases, 0.0).unwrap();
        prop_assert_eq!(w.len(), 10);
        prop_assert!((w[0].0 - phases.core_start()).abs() < 1e-9);
        prop_assert!((w[9].1 - phases.core_end()).abs() < 1e-9);
        for pair in w.windows(2) {
            prop_assert!((pair[0].1 - pair[1].0).abs() < 1e-9);
        }
        let total: f64 = w.iter().map(|(a, b)| b - a).sum();
        prop_assert!((total - phases.core()).abs() < 1e-6);
    }

    #[test]
    fn fraction_rules_ordered_by_rigour(total in 1usize..200_000, node_w in 50.0..2000.0f64) {
        let l1 = FractionRule::level1().required_nodes(total, node_w).unwrap();
        let l2 = FractionRule::level2().required_nodes(total, node_w).unwrap();
        let l3 = FractionRule::All.required_nodes(total, node_w).unwrap();
        prop_assert!(l1 <= l2, "L1 {l1} > L2 {l2}");
        prop_assert!(l2 <= l3);
        prop_assert_eq!(l3, total);
        // Every rule's own requirement satisfies the rule.
        for rule in [FractionRule::level1(), FractionRule::level2(), FractionRule::revised()] {
            let req = rule.required_nodes(total, node_w).unwrap();
            prop_assert!(
                rule.is_satisfied(total, req, req as f64 * node_w),
                "{rule:?} total={total} req={req}"
            );
        }
    }

    #[test]
    fn revised_rule_floors(total in 1usize..200_000) {
        let req = FractionRule::revised().required_nodes(total, 400.0).unwrap();
        prop_assert!(req >= 16.min(total));
        prop_assert!(req as f64 >= (total as f64 * 0.10).ceil().min(total as f64));
        prop_assert!(req <= total);
    }

    #[test]
    fn specs_are_internally_consistent(phases in arb_phases()) {
        for m in Methodology::all() {
            let spec = m.spec();
            // Coverage fraction and covers_full_core agree.
            let cov = spec.timing.coverage(&phases);
            if spec.timing.covers_full_core() {
                prop_assert!((cov - 1.0).abs() < 1e-12);
            } else {
                prop_assert!(cov < 1.0);
            }
            // Windows are always inside the run.
            for (a, b) in spec.timing.windows(&phases, 0.5).unwrap() {
                prop_assert!(a >= 0.0 && b <= phases.total() + 1e-9 && b > a);
            }
        }
    }
}

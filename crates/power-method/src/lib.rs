//! The EE HPC WG power measurement methodology — the paper's core subject.
//!
//! This crate implements the methodology the Green500 and Top500 use to
//! accept power measurements, exactly as summarized in the paper's Table 1,
//! plus the paper's proposed revision and the adversarial analyses that
//! motivated it:
//!
//! * [`level`] — the three quality levels and the revised requirements:
//!   measurement granularity, timing, machine fraction, subsystems, and
//!   point of measurement;
//! * [`window`] — timing rules: Level 1's "the longer of one minute or 20%
//!   of the middle 80% of the core phase", Level 2's ten equally spaced
//!   averages, Level 3's continuous full-run coverage, and the revised
//!   full-core-phase rule;
//! * [`fraction`] — machine-fraction rules: 1/64 & 2 kW (L1), 1/8 & 10 kW
//!   (L2), everything (L3), and the revised `max(16 nodes, 10%)`;
//! * [`measure`] — executing a measurement plan against a simulated
//!   machine: node selection, metering, window averaging, linear
//!   extrapolation, FLOPS/W;
//! * [`extrapolate`] — subset-to-full-system estimates with the accuracy
//!   assessment (confidence intervals) the paper recommends every
//!   submission include;
//! * [`gaming`] — the exploits: optimal-interval selection (TSUBAME-KFC
//!   −10.9%, L-CSC −23.9%), DVFS-phase timing, and low-VID node
//!   cherry-picking;
//! * [`validate`] — submission checking: does a claimed measurement
//!   actually satisfy its level's rules?
//! * [`report`] — submission records.

#![warn(missing_docs)]
// `!(a > b)` comparisons are deliberate throughout: unlike `a <= b` they
// are true for NaN inputs, so malformed windows/parameters are rejected
// instead of silently accepted.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod conversion;
pub mod extrapolate;
pub mod fraction;
pub mod gaming;
pub mod level;
pub mod measure;
pub mod provisioning;
pub mod report;
pub mod streaming;
pub mod subsystems;
pub mod validate;
pub mod window;

pub use extrapolate::ExtrapolationReport;
pub use fraction::FractionRule;
pub use level::{Methodology, MethodologySpec};
pub use measure::{
    measure_with_store, Measurement, MeasurementPlan, NodeSelection, WindowPlacement,
};
pub use report::Submission;
pub use streaming::OnlineLevelMeasurement;
pub use subsystems::SubsystemOverheads;
pub use window::TimingRule;

/// Errors produced by methodology operations.
#[derive(Debug, Clone, PartialEq)]
pub enum MethodError {
    /// Configuration out of range.
    InvalidConfig {
        /// Offending field.
        field: &'static str,
        /// Violated constraint.
        reason: &'static str,
    },
    /// An underlying simulation error.
    Sim(power_sim::SimError),
    /// An underlying metering error.
    Meter(power_meter::MeterError),
    /// An underlying statistics error.
    Stats(power_stats::StatsError),
}

impl std::fmt::Display for MethodError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MethodError::InvalidConfig { field, reason } => {
                write!(f, "invalid methodology config `{field}`: {reason}")
            }
            MethodError::Sim(e) => write!(f, "simulation error: {e}"),
            MethodError::Meter(e) => write!(f, "metering error: {e}"),
            MethodError::Stats(e) => write!(f, "statistics error: {e}"),
        }
    }
}

impl std::error::Error for MethodError {}

impl From<power_sim::SimError> for MethodError {
    fn from(e: power_sim::SimError) -> Self {
        MethodError::Sim(e)
    }
}

impl From<power_meter::MeterError> for MethodError {
    fn from(e: power_meter::MeterError) -> Self {
        MethodError::Meter(e)
    }
}

impl From<power_stats::StatsError> for MethodError {
    fn from(e: power_stats::StatsError) -> Self {
        MethodError::Stats(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MethodError>;

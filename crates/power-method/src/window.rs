//! Timing rules: which part of the run the power measurement must cover.
//!
//! Aspect 1b of the methodology (paper Table 1):
//!
//! * **Level 1** — "the longer of one minute or 20% of the middle 80% of
//!   the core phase": the submitter picks *any* window of that length
//!   inside the middle 80%. Section 3 shows this choice is worth >20% on
//!   modern GPU systems.
//! * **Level 2** — ten equally spaced power-averaged measurements spanning
//!   the full run.
//! * **Level 3** — continual measurement across the full run.
//! * **Revised** (the paper's recommendation) — the power measurement must
//!   cover exactly the core phase, "preferably \[with\] a number of
//!   measurements before and after as well".

use power_workload::RunPhases;
use serde::{Deserialize, Serialize};

use crate::{MethodError, Result};

/// A timing rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TimingRule {
    /// Level 1: a single window of length `max(min_seconds, frac *
    /// middle-80% core phase)` placed anywhere within the middle 80%.
    ShortWindow {
        /// Fraction of the middle-80% core phase the window must cover.
        frac: f64,
        /// Absolute minimum window length in seconds.
        min_seconds: f64,
    },
    /// Level 2: `segments` equally spaced averaged measurements spanning
    /// the whole core phase.
    SpacedSegments {
        /// Number of segments (10 in the methodology).
        segments: usize,
    },
    /// Level 3 / revised rule: the full core phase.
    FullCore,
}

impl TimingRule {
    /// The Level 1 rule as published.
    pub fn level1() -> Self {
        TimingRule::ShortWindow {
            frac: 0.20,
            min_seconds: 60.0,
        }
    }

    /// The Level 2 rule as published.
    pub fn level2() -> Self {
        TimingRule::SpacedSegments { segments: 10 }
    }

    /// Required window length in seconds for a run with the given phases.
    pub fn window_length(&self, phases: &RunPhases) -> f64 {
        match *self {
            TimingRule::ShortWindow { frac, min_seconds } => {
                let (a, b) = phases.core_middle_80();
                (frac * (b - a)).max(min_seconds)
            }
            TimingRule::SpacedSegments { .. } | TimingRule::FullCore => phases.core(),
        }
    }

    /// The measurement windows for this rule, with the short window placed
    /// at `placement` in `[0, 1]` (0 = earliest legal position, 1 =
    /// latest). Returns `(from, to)` pairs in run time.
    pub fn windows(&self, phases: &RunPhases, placement: f64) -> Result<Vec<(f64, f64)>> {
        if !(0.0..=1.0).contains(&placement) {
            return Err(MethodError::InvalidConfig {
                field: "placement",
                reason: "placement must lie in [0, 1]",
            });
        }
        match *self {
            TimingRule::ShortWindow { .. } => {
                let (lo, hi) = phases.core_middle_80();
                let len = self.window_length(phases).min(hi - lo);
                let latest_start = hi - len;
                let start = lo + placement * (latest_start - lo);
                Ok(vec![(start, start + len)])
            }
            TimingRule::SpacedSegments { segments } => {
                if segments == 0 {
                    return Err(MethodError::InvalidConfig {
                        field: "segments",
                        reason: "at least one segment is required",
                    });
                }
                let seg = phases.core() / segments as f64;
                Ok((0..segments)
                    .map(|k| {
                        let a = phases.core_start() + k as f64 * seg;
                        (a, a + seg)
                    })
                    .collect())
            }
            TimingRule::FullCore => Ok(vec![(phases.core_start(), phases.core_end())]),
        }
    }

    /// All legal start positions of the short window, discretized into
    /// `steps` placements — the search space of the optimal-interval
    /// exploit. Full-coverage rules have a single "placement".
    pub fn placements(&self, steps: usize) -> Vec<f64> {
        match self {
            TimingRule::ShortWindow { .. } => {
                if steps <= 1 {
                    vec![0.0]
                } else {
                    (0..steps).map(|k| k as f64 / (steps - 1) as f64).collect()
                }
            }
            _ => vec![0.0],
        }
    }

    /// Whether this rule covers the entire core phase (the property the
    /// paper argues is the only defensible choice).
    pub fn covers_full_core(&self) -> bool {
        !matches!(self, TimingRule::ShortWindow { .. })
    }

    /// Fraction of the core phase this rule actually measures.
    pub fn coverage(&self, phases: &RunPhases) -> f64 {
        match *self {
            TimingRule::ShortWindow { .. } => (self.window_length(phases) / phases.core()).min(1.0),
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phases() -> RunPhases {
        // 1000 s core phase starting at t = 100.
        RunPhases::new(100.0, 1000.0, 50.0).unwrap()
    }

    #[test]
    fn level1_window_length_is_20pct_of_middle80() {
        let rule = TimingRule::level1();
        // middle 80% = 800 s, 20% of that = 160 s.
        assert_eq!(rule.window_length(&phases()), 160.0);
    }

    #[test]
    fn level1_minimum_one_minute() {
        let rule = TimingRule::level1();
        let short = RunPhases::core_only(120.0).unwrap();
        // 20% of middle 80% = 19.2 s < 60 s minimum.
        assert_eq!(rule.window_length(&short), 60.0);
    }

    #[test]
    fn level1_placement_range() {
        let rule = TimingRule::level1();
        let p = phases();
        // Earliest: starts at core_start + 10% = 200.
        let w = rule.windows(&p, 0.0).unwrap();
        assert_eq!(w, vec![(200.0, 360.0)]);
        // Latest: ends at core_end - 10% = 1000.
        let w = rule.windows(&p, 1.0).unwrap();
        assert_eq!(w, vec![(840.0, 1000.0)]);
        // Middle placement stays inside the middle 80%.
        let w = rule.windows(&p, 0.5).unwrap();
        assert!(w[0].0 >= 200.0 && w[0].1 <= 1000.0);
        assert!(rule.windows(&p, 1.5).is_err());
    }

    #[test]
    fn level2_ten_segments_span_core() {
        let rule = TimingRule::level2();
        let w = rule.windows(&phases(), 0.0).unwrap();
        assert_eq!(w.len(), 10);
        assert_eq!(w[0].0, 100.0);
        assert_eq!(w[9].1, 1100.0);
        // Contiguous and equal length.
        for pair in w.windows(2) {
            assert!((pair[0].1 - pair[1].0).abs() < 1e-9);
            assert!(((pair[0].1 - pair[0].0) - (pair[1].1 - pair[1].0)).abs() < 1e-9);
        }
    }

    #[test]
    fn full_core_is_single_window() {
        let w = TimingRule::FullCore.windows(&phases(), 0.0).unwrap();
        assert_eq!(w, vec![(100.0, 1100.0)]);
    }

    #[test]
    fn coverage_fractions() {
        let p = phases();
        assert!((TimingRule::level1().coverage(&p) - 0.16).abs() < 1e-12);
        assert_eq!(TimingRule::level2().coverage(&p), 1.0);
        assert_eq!(TimingRule::FullCore.coverage(&p), 1.0);
        assert!(!TimingRule::level1().covers_full_core());
        assert!(TimingRule::level2().covers_full_core());
        assert!(TimingRule::FullCore.covers_full_core());
    }

    #[test]
    fn placements_enumerate_search_space() {
        let rule = TimingRule::level1();
        let p = rule.placements(5);
        assert_eq!(p, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(TimingRule::FullCore.placements(5), vec![0.0]);
        assert_eq!(rule.placements(1), vec![0.0]);
    }

    #[test]
    fn window_never_exceeds_middle_80() {
        let rule = TimingRule::level1();
        let p = phases();
        for k in 0..=20 {
            let place = k as f64 / 20.0;
            let w = rule.windows(&p, place).unwrap()[0];
            let (lo, hi) = p.core_middle_80();
            assert!(w.0 >= lo - 1e-9 && w.1 <= hi + 1e-9, "window {w:?}");
        }
    }

    #[test]
    fn zero_segments_rejected() {
        assert!(TimingRule::SpacedSegments { segments: 0 }
            .windows(&phases(), 0.0)
            .is_err());
    }
}

//! Subsystem coverage (Aspect 3): interconnect, storage and
//! infrastructure power.
//!
//! Level 1 measures *compute nodes only*; Levels 2 and 3 must include
//! "all participating subsystems" — estimated (L2) or measured (L3). The
//! paper (citing Scogland et al., ICPE '14) notes that the lower levels
//! "can significantly overstate a system's energy efficiency" partly for
//! this reason: the network fabric, burst storage and infrastructure nodes
//! that cannot be switched off draw real power that a compute-only number
//! hides. [`SubsystemOverheads`] models those draws and how each level
//! accounts for them.

use power_stats::rng::substream;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::level::SubsystemRule;
use crate::{MethodError, Result};

/// Non-compute power participating in a benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubsystemOverheads {
    /// Interconnect power attributable to each compute node (its share of
    /// the switches and links), in watts.
    pub interconnect_w_per_node: f64,
    /// Storage power participating in the run (machine-wide), in watts.
    pub storage_w: f64,
    /// Infrastructure that cannot be switched off for the run (head
    /// nodes, management, I/O forwarders), machine-wide watts.
    pub infrastructure_w: f64,
}

impl SubsystemOverheads {
    /// No overheads (a pure compute measurement).
    pub fn none() -> Self {
        SubsystemOverheads {
            interconnect_w_per_node: 0.0,
            storage_w: 0.0,
            infrastructure_w: 0.0,
        }
    }

    /// Typical shares for a fat-tree InfiniBand cluster: ~8 W of switch
    /// power per node, a modest storage partition and a head-node rack.
    pub fn typical_cluster(total_nodes: usize) -> Self {
        SubsystemOverheads {
            interconnect_w_per_node: 8.0,
            storage_w: 0.004 * total_nodes as f64 * 400.0,
            infrastructure_w: 2_000.0 + 0.5 * total_nodes as f64,
        }
    }

    /// Validates the overhead values.
    pub fn validate(&self) -> Result<()> {
        for (field, v) in [
            ("interconnect_w_per_node", self.interconnect_w_per_node),
            ("storage_w", self.storage_w),
            ("infrastructure_w", self.infrastructure_w),
        ] {
            if !(v >= 0.0 && v.is_finite()) {
                return Err(MethodError::InvalidConfig {
                    field,
                    reason: "overhead watts must be non-negative and finite",
                });
            }
        }
        Ok(())
    }

    /// True total overhead power for a machine of `total_nodes` nodes.
    pub fn total_w(&self, total_nodes: usize) -> f64 {
        self.interconnect_w_per_node * total_nodes as f64 + self.storage_w + self.infrastructure_w
    }

    /// The overhead power a methodology level reports:
    ///
    /// * compute-only rules report 0;
    /// * "measured or estimated" (Level 2) reports the true total with a
    ///   deterministic estimation error drawn within `±estimate_error`;
    /// * "measured" (Level 3) reports the true total.
    pub fn accounted_w(
        &self,
        rule: SubsystemRule,
        total_nodes: usize,
        estimate_error: f64,
        seed: u64,
    ) -> f64 {
        match rule {
            SubsystemRule::ComputeNodesOnly => 0.0,
            SubsystemRule::AllParticipatingMeasuredOrEstimated => {
                let mut rng = substream(seed, 0x0E57);
                let err = estimate_error.clamp(0.0, 0.9) * (rng.random::<f64>() * 2.0 - 1.0);
                self.total_w(total_nodes) * (1.0 + err)
            }
            SubsystemRule::AllParticipatingMeasured => self.total_w(total_nodes),
        }
    }

    /// The relative efficiency overstatement of a compute-only number on
    /// a machine whose compute power is `compute_w`:
    /// `eff_compute / eff_total - 1 = overheads / compute`.
    pub fn efficiency_overstatement(&self, total_nodes: usize, compute_w: f64) -> Result<f64> {
        if !(compute_w > 0.0) {
            return Err(MethodError::InvalidConfig {
                field: "compute_w",
                reason: "compute power must be positive",
            });
        }
        Ok(self.total_w(total_nodes) / compute_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_scale_with_machine() {
        let o = SubsystemOverheads::typical_cluster(1000);
        assert!(o.total_w(1000) > 0.0);
        let small = SubsystemOverheads::typical_cluster(100);
        assert!(o.total_w(1000) > small.total_w(100));
        assert_eq!(SubsystemOverheads::none().total_w(10_000), 0.0);
    }

    #[test]
    fn accounting_by_rule() {
        let o = SubsystemOverheads {
            interconnect_w_per_node: 10.0,
            storage_w: 1_000.0,
            infrastructure_w: 500.0,
        };
        let truth = o.total_w(100); // 1000 + 1000 + 500 = 2500
        assert_eq!(truth, 2_500.0);
        assert_eq!(
            o.accounted_w(SubsystemRule::ComputeNodesOnly, 100, 0.1, 1),
            0.0
        );
        assert_eq!(
            o.accounted_w(SubsystemRule::AllParticipatingMeasured, 100, 0.1, 1),
            truth
        );
        let est = o.accounted_w(
            SubsystemRule::AllParticipatingMeasuredOrEstimated,
            100,
            0.10,
            1,
        );
        assert!((est - truth).abs() <= truth * 0.10 + 1e-9);
        assert_ne!(est, truth);
        // Deterministic in the seed.
        let est2 = o.accounted_w(
            SubsystemRule::AllParticipatingMeasuredOrEstimated,
            100,
            0.10,
            1,
        );
        assert_eq!(est, est2);
    }

    #[test]
    fn overstatement_formula() {
        let o = SubsystemOverheads {
            interconnect_w_per_node: 8.0,
            storage_w: 0.0,
            infrastructure_w: 0.0,
        };
        // 8 W/node over 400 W/node compute = 2%.
        let over = o.efficiency_overstatement(160, 160.0 * 400.0).unwrap();
        assert!((over - 0.02).abs() < 1e-12);
        assert!(o.efficiency_overstatement(160, 0.0).is_err());
    }

    #[test]
    fn validation() {
        assert!(SubsystemOverheads::none().validate().is_ok());
        let bad = SubsystemOverheads {
            interconnect_w_per_node: -1.0,
            storage_w: 0.0,
            infrastructure_w: 0.0,
        };
        assert!(bad.validate().is_err());
        let bad = SubsystemOverheads {
            interconnect_w_per_node: 0.0,
            storage_w: f64::NAN,
            infrastructure_w: 0.0,
        };
        assert!(bad.validate().is_err());
    }
}

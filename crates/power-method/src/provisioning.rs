//! Power provisioning and capping from node samples.
//!
//! The paper's introduction lists the downstream uses of accurate
//! system-level power characterization: "architectural trending, system
//! modeling (design, selection, upgrade, tuning, analysis), procurement,
//! operational improvements and power capping" — the problem domain of
//! Fan, Weber & Barroso's power-provisioning work that Section 2 cites.
//! This module turns a measured node sample into the two numbers a
//! facility engineer needs:
//!
//! * how much breaker/PDU capacity a machine of `N` such nodes requires
//!   at a given exceedance risk ([`provisioned_capacity_w`]);
//! * how many *extra* nodes the same capacity can host once sampled
//!   statistics replace nameplate worst cases ([`stranded_capacity`]) —
//!   Fan et al.'s headline observation that nameplate provisioning
//!   strands large amounts of capacity.

use power_stats::normal::z_critical;
use power_stats::summary::Summary;
use serde::{Deserialize, Serialize};

use crate::{MethodError, Result};

/// A provisioning analysis derived from a per-node power sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProvisioningReport {
    /// Sampled mean per-node power (watts).
    pub node_mean_w: f64,
    /// Sampled per-node standard deviation (watts).
    pub node_sigma_w: f64,
    /// Machine size the analysis is for.
    pub total_nodes: usize,
    /// Exceedance probability the capacity is sized for.
    pub exceedance: f64,
    /// Required capacity for the whole machine (watts).
    pub capacity_w: f64,
    /// Capacity a nameplate-based plan would demand (watts).
    pub nameplate_capacity_w: f64,
    /// Fraction of the nameplate capacity that sampling shows is stranded.
    pub stranded_fraction: f64,
}

/// Sizes the capacity a machine of `total_nodes` nodes needs so that
/// total power exceeds it with probability at most `exceedance`, given a
/// per-node sample from the target workload.
///
/// Node powers are independent across nodes for a balanced workload, so
/// the machine total is approximately normal with mean `N mu` and
/// standard deviation `sqrt(N) sigma` — the aggregation effect that makes
/// over-subscription safe at scale.
pub fn provisioned_capacity_w(
    node_sample_w: &[f64],
    total_nodes: usize,
    exceedance: f64,
) -> Result<f64> {
    if node_sample_w.len() < 2 {
        return Err(MethodError::InvalidConfig {
            field: "node_sample_w",
            reason: "at least two sampled nodes are required",
        });
    }
    if total_nodes == 0 {
        return Err(MethodError::InvalidConfig {
            field: "total_nodes",
            reason: "machine must have at least one node",
        });
    }
    if !(exceedance > 0.0 && exceedance < 0.5) {
        return Err(MethodError::InvalidConfig {
            field: "exceedance",
            reason: "exceedance must lie in (0, 0.5)",
        });
    }
    let s = Summary::from_slice(node_sample_w);
    let mu = s.mean();
    let sigma = s.sample_std_dev().map_err(MethodError::Stats)?;
    // One-sided quantile: z_{1-exceedance}.
    let z = z_critical(1.0 - 2.0 * exceedance).map_err(MethodError::Stats)?;
    let n = total_nodes as f64;
    Ok(n * mu + z * n.sqrt() * sigma)
}

/// Full provisioning analysis against a nameplate per-node rating.
pub fn provisioning_report(
    node_sample_w: &[f64],
    total_nodes: usize,
    exceedance: f64,
    nameplate_node_w: f64,
) -> Result<ProvisioningReport> {
    if !(nameplate_node_w > 0.0 && nameplate_node_w.is_finite()) {
        return Err(MethodError::InvalidConfig {
            field: "nameplate_node_w",
            reason: "nameplate rating must be positive",
        });
    }
    let capacity = provisioned_capacity_w(node_sample_w, total_nodes, exceedance)?;
    let s = Summary::from_slice(node_sample_w);
    let nameplate = nameplate_node_w * total_nodes as f64;
    Ok(ProvisioningReport {
        node_mean_w: s.mean(),
        node_sigma_w: s.sample_std_dev().map_err(MethodError::Stats)?,
        total_nodes,
        exceedance,
        capacity_w: capacity,
        nameplate_capacity_w: nameplate,
        stranded_fraction: (1.0 - capacity / nameplate).max(0.0),
    })
}

/// How many additional nodes the nameplate-sized capacity can actually
/// host at the measured statistics and exceedance risk (Fan et al.'s
/// "how many machines fit in the stranded capacity" question). Solved by
/// bisection on the capacity formula.
pub fn stranded_capacity(
    node_sample_w: &[f64],
    total_nodes: usize,
    exceedance: f64,
    nameplate_node_w: f64,
) -> Result<usize> {
    let report = provisioning_report(node_sample_w, total_nodes, exceedance, nameplate_node_w)?;
    let budget = report.nameplate_capacity_w;
    let mut lo = total_nodes;
    let mut hi = total_nodes * 4 + 16;
    // Grow hi until it no longer fits (bounded: mean > 0).
    while provisioned_capacity_w(node_sample_w, hi, exceedance)? <= budget {
        lo = hi;
        hi *= 2;
        if hi > total_nodes * 1024 {
            break;
        }
    }
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if provisioned_capacity_w(node_sample_w, mid, exceedance)? <= budget {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(lo - total_nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use power_stats::rng::{normal_draw, seeded};

    fn sample(n: usize, mu: f64, sigma: f64, seed: u64) -> Vec<f64> {
        let mut rng = seeded(seed);
        (0..n).map(|_| normal_draw(&mut rng, mu, sigma)).collect()
    }

    #[test]
    fn capacity_between_mean_and_nameplate() {
        let s = sample(64, 400.0, 8.0, 1);
        let cap = provisioned_capacity_w(&s, 10_000, 0.001).unwrap();
        // Above the expected total...
        assert!(cap > 10_000.0 * 395.0);
        // ...but far below a 500 W nameplate plan.
        assert!(cap < 10_000.0 * 450.0);
    }

    #[test]
    fn aggregation_shrinks_relative_headroom() {
        // The sqrt(N) effect: relative headroom over the mean falls as
        // the machine grows.
        let s = sample(64, 400.0, 8.0, 2);
        let rel = |n: usize| {
            let cap = provisioned_capacity_w(&s, n, 0.001).unwrap();
            let mean = Summary::from_slice(&s).mean() * n as f64;
            cap / mean - 1.0
        };
        assert!(
            rel(100) > 3.0 * rel(10_000),
            "{} vs {}",
            rel(100),
            rel(10_000)
        );
    }

    #[test]
    fn report_quantifies_stranding() {
        // 400 W measured vs 520 W nameplate: ~23% of capacity stranded.
        let s = sample(64, 400.0, 8.0, 3);
        let r = provisioning_report(&s, 10_000, 0.001, 520.0).unwrap();
        assert!(
            (0.15..0.30).contains(&r.stranded_fraction),
            "stranded = {}",
            r.stranded_fraction
        );
        assert!(r.capacity_w < r.nameplate_capacity_w);
    }

    #[test]
    fn stranded_capacity_hosts_more_nodes() {
        let s = sample(64, 400.0, 8.0, 4);
        let extra = stranded_capacity(&s, 10_000, 0.001, 520.0).unwrap();
        // 520/400 = 1.3: ~30% more nodes minus headroom.
        assert!((2_000..3_500).contains(&extra), "extra nodes = {extra}");
        // Sanity: adding them keeps the budget.
        let cap = provisioned_capacity_w(&s, 10_000 + extra, 0.001).unwrap();
        assert!(cap <= 520.0 * 10_000.0 + 1.0);
    }

    #[test]
    fn tighter_risk_needs_more_capacity() {
        let s = sample(64, 400.0, 8.0, 5);
        let loose = provisioned_capacity_w(&s, 1_000, 0.05).unwrap();
        let tight = provisioned_capacity_w(&s, 1_000, 0.001).unwrap();
        assert!(tight > loose);
    }

    #[test]
    fn validation() {
        let s = sample(64, 400.0, 8.0, 6);
        assert!(provisioned_capacity_w(&[400.0], 100, 0.01).is_err());
        assert!(provisioned_capacity_w(&s, 0, 0.01).is_err());
        assert!(provisioned_capacity_w(&s, 100, 0.9).is_err());
        assert!(provisioning_report(&s, 100, 0.01, 0.0).is_err());
    }
}

//! Methodology quality levels (paper Table 1) and the revised rules.

use crate::fraction::FractionRule;
use crate::window::TimingRule;
use power_sim::hierarchy::MeasurementPoint;
use serde::{Deserialize, Serialize};

/// Granularity requirement (Aspect 1a).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Granularity {
    /// At least one averaged power sample per second.
    OneSamplePerSecond,
    /// Continuously integrated energy.
    IntegratedEnergy,
}

/// Subsystem coverage requirement (Aspect 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SubsystemRule {
    /// Compute nodes only.
    ComputeNodesOnly,
    /// All participating subsystems, measured or estimated.
    AllParticipatingMeasuredOrEstimated,
    /// All participating subsystems, measured.
    AllParticipatingMeasured,
}

/// Point-of-measurement requirement (Aspect 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ConversionRule {
    /// Upstream of power conversion, or downstream with
    /// manufacturer-supplied loss data.
    UpstreamOrManufacturerData,
    /// Upstream, or downstream with off-line loss measurements.
    UpstreamOrOfflineMeasurement,
    /// Upstream, or conversion loss measured simultaneously.
    UpstreamOrSimultaneousMeasurement,
}

/// A named methodology variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Methodology {
    /// EE HPC WG Level 1 (the most common real-world submission class).
    Level1,
    /// EE HPC WG Level 2.
    Level2,
    /// EE HPC WG Level 3.
    Level3,
    /// The paper's proposed revision: full-core-phase timing and
    /// max(16, 10%) machine fraction, with a mandatory accuracy
    /// assessment. Adopted by the Green500/Top500 in the late-2015
    /// timeframe.
    Revised,
}

impl Methodology {
    /// The full requirement set of this methodology.
    pub fn spec(&self) -> MethodologySpec {
        match self {
            Methodology::Level1 => MethodologySpec {
                methodology: *self,
                granularity: Granularity::OneSamplePerSecond,
                timing: TimingRule::level1(),
                fraction: FractionRule::level1(),
                subsystems: SubsystemRule::ComputeNodesOnly,
                conversion: ConversionRule::UpstreamOrManufacturerData,
                reference_point: MeasurementPoint::NodeWall,
                requires_accuracy_assessment: false,
            },
            Methodology::Level2 => MethodologySpec {
                methodology: *self,
                granularity: Granularity::OneSamplePerSecond,
                timing: TimingRule::level2(),
                fraction: FractionRule::level2(),
                subsystems: SubsystemRule::AllParticipatingMeasuredOrEstimated,
                conversion: ConversionRule::UpstreamOrOfflineMeasurement,
                reference_point: MeasurementPoint::NodeWall,
                requires_accuracy_assessment: false,
            },
            Methodology::Level3 => MethodologySpec {
                methodology: *self,
                granularity: Granularity::IntegratedEnergy,
                timing: TimingRule::FullCore,
                fraction: FractionRule::All,
                subsystems: SubsystemRule::AllParticipatingMeasured,
                conversion: ConversionRule::UpstreamOrSimultaneousMeasurement,
                reference_point: MeasurementPoint::NodeWall,
                requires_accuracy_assessment: false,
            },
            Methodology::Revised => MethodologySpec {
                methodology: *self,
                granularity: Granularity::OneSamplePerSecond,
                timing: TimingRule::FullCore,
                fraction: FractionRule::revised(),
                subsystems: SubsystemRule::ComputeNodesOnly,
                conversion: ConversionRule::UpstreamOrManufacturerData,
                reference_point: MeasurementPoint::NodeWall,
                requires_accuracy_assessment: true,
            },
        }
    }

    /// All four variants, in increasing order of rigour of the original
    /// three plus the revision.
    pub fn all() -> [Methodology; 4] {
        [
            Methodology::Level1,
            Methodology::Level2,
            Methodology::Level3,
            Methodology::Revised,
        ]
    }
}

impl std::fmt::Display for Methodology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Methodology::Level1 => write!(f, "Level 1"),
            Methodology::Level2 => write!(f, "Level 2"),
            Methodology::Level3 => write!(f, "Level 3"),
            Methodology::Revised => write!(f, "Revised (SC'15)"),
        }
    }
}

/// The complete requirement set of a methodology variant — one row of the
/// paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MethodologySpec {
    /// Which variant this is.
    pub methodology: Methodology,
    /// Aspect 1a: measurement granularity.
    pub granularity: Granularity,
    /// Aspect 1b: timing.
    pub timing: TimingRule,
    /// Aspect 2: machine fraction.
    pub fraction: FractionRule,
    /// Aspect 3: subsystems.
    pub subsystems: SubsystemRule,
    /// Aspect 4: point of measurement.
    pub conversion: ConversionRule,
    /// The reference point all readings are normalized to.
    pub reference_point: MeasurementPoint,
    /// Whether submissions must include an accuracy assessment (the
    /// paper's additional recommendation).
    pub requires_accuracy_assessment: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use power_workload::RunPhases;

    #[test]
    fn table1_level_structure() {
        let l1 = Methodology::Level1.spec();
        assert_eq!(l1.granularity, Granularity::OneSamplePerSecond);
        assert!(!l1.timing.covers_full_core());
        assert_eq!(l1.subsystems, SubsystemRule::ComputeNodesOnly);

        let l2 = Methodology::Level2.spec();
        assert!(l2.timing.covers_full_core());
        assert_eq!(
            l2.subsystems,
            SubsystemRule::AllParticipatingMeasuredOrEstimated
        );

        let l3 = Methodology::Level3.spec();
        assert_eq!(l3.granularity, Granularity::IntegratedEnergy);
        assert_eq!(l3.fraction, FractionRule::All);
        assert_eq!(l3.subsystems, SubsystemRule::AllParticipatingMeasured);
    }

    #[test]
    fn revised_spec_matches_paper_conclusions() {
        let rev = Methodology::Revised.spec();
        assert_eq!(rev.timing, TimingRule::FullCore);
        assert_eq!(
            rev.fraction,
            FractionRule::NodesOrFraction {
                min_nodes: 16,
                min_fraction: 0.10
            }
        );
        assert!(rev.requires_accuracy_assessment);
    }

    #[test]
    fn fraction_requirements_increase_with_level() {
        let phases = RunPhases::core_only(3600.0).unwrap();
        let _ = phases;
        let n = 10_000;
        let l1 = Methodology::Level1
            .spec()
            .fraction
            .required_nodes(n, 400.0)
            .unwrap();
        let l2 = Methodology::Level2
            .spec()
            .fraction
            .required_nodes(n, 400.0)
            .unwrap();
        let l3 = Methodology::Level3
            .spec()
            .fraction
            .required_nodes(n, 400.0)
            .unwrap();
        assert!(l1 < l2 && l2 < l3);
        assert_eq!(l3, n);
    }

    #[test]
    fn display_names() {
        assert_eq!(Methodology::Level1.to_string(), "Level 1");
        assert_eq!(Methodology::Revised.to_string(), "Revised (SC'15)");
        assert_eq!(Methodology::all().len(), 4);
    }
}

//! Submission records — what a site sends to the Green500/Top500.

use crate::level::Methodology;
use crate::measure::Measurement;
use serde::{Deserialize, Serialize};

/// A list submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Submission {
    /// System name.
    pub system: String,
    /// Methodology the site claims to have followed.
    pub methodology: Methodology,
    /// Reported full-system power in watts.
    pub reported_power_w: f64,
    /// Reported sustained performance in flops/s (Rmax).
    pub rmax_flops: f64,
    /// Number of nodes that were metered.
    pub metered_nodes: usize,
    /// Machine size in nodes.
    pub total_nodes: usize,
    /// Aggregate measured (un-extrapolated) subset power in watts.
    pub measured_subset_power_w: f64,
    /// Measurement windows in run time.
    pub windows: Vec<(f64, f64)>,
    /// Self-reported relative accuracy (the paper's recommended
    /// assessment), if provided.
    pub claimed_accuracy: Option<f64>,
}

impl Submission {
    /// Builds a submission from a completed measurement.
    pub fn from_measurement(system: impl Into<String>, m: &Measurement) -> Self {
        Submission {
            system: system.into(),
            methodology: m.methodology,
            reported_power_w: m.reported_power_w,
            rmax_flops: m.rmax_flops,
            metered_nodes: m.metered_nodes.len(),
            total_nodes: m.total_nodes,
            measured_subset_power_w: m.subset_power_w,
            windows: m.windows.clone(),
            claimed_accuracy: m.assessment.as_ref().map(|a| a.relative_accuracy),
        }
    }

    /// The ranking metric: FLOPS/W.
    pub fn flops_per_watt(&self) -> f64 {
        if self.reported_power_w > 0.0 {
            self.rmax_flops / self.reported_power_w
        } else {
            0.0
        }
    }

    /// GFLOPS/W, as the lists print it.
    pub fn gflops_per_watt(&self) -> f64 {
        self.flops_per_watt() / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submission() -> Submission {
        Submission {
            system: "L-CSC".into(),
            methodology: Methodology::Level1,
            reported_power_w: 57_200.0,
            rmax_flops: 301.5e12,
            metered_nodes: 16,
            total_nodes: 160,
            measured_subset_power_w: 5_720.0,
            windows: vec![(600.0, 1680.0)],
            claimed_accuracy: Some(0.012),
        }
    }

    #[test]
    fn efficiency_metric() {
        let s = submission();
        // 301.5 TF / 57.2 kW = 5.27 GF/W (the real L-CSC Green500 entry).
        assert!((s.gflops_per_watt() - 5.271).abs() < 0.01);
        let zero = Submission {
            reported_power_w: 0.0,
            ..s
        };
        assert_eq!(zero.flops_per_watt(), 0.0);
    }

    #[test]
    fn from_measurement_copies_fields() {
        use crate::measure::Measurement;
        let m = Measurement {
            methodology: Methodology::Revised,
            total_nodes: 100,
            metered_nodes: (0..16).collect(),
            windows: vec![(0.0, 100.0)],
            subset_power_w: 6_400.0,
            overhead_w: 0.0,
            reported_power_w: 40_000.0,
            per_node_w: vec![400.0; 16],
            rmax_flops: 1e14,
            assessment: None,
        };
        let s = Submission::from_measurement("demo", &m);
        assert_eq!(s.metered_nodes, 16);
        assert_eq!(s.total_nodes, 100);
        assert_eq!(s.claimed_accuracy, None);
        assert!((s.flops_per_watt() - 2.5e9).abs() < 1.0);
    }
}

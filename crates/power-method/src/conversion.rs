//! Point-of-measurement handling (Aspect 4).
//!
//! Table 1's fourth aspect governs *where* power may be measured:
//! upstream of power conversion, or downstream with conversion losses
//! accounted — from manufacturer data (Level 1), off-line measurements
//! (Level 2), or simultaneous measurement (Level 3). This module refers
//! readings between points of the `power-sim` conversion hierarchy and
//! quantifies the bias of trusting manufacturer-claimed efficiencies, the
//! quiet inaccuracy the level distinctions exist to bound.

use power_sim::hierarchy::{MeasurementPoint, PowerHierarchy};
use serde::{Deserialize, Serialize};

use crate::{MethodError, Result};

/// How conversion losses between the meter and the reference point are
/// accounted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LossAccounting {
    /// Use the machine's true stage efficiencies (Level 3's simultaneous
    /// measurement, idealized).
    Measured,
    /// Use manufacturer-claimed stage efficiencies, which may differ from
    /// the truth (Level 1).
    ManufacturerData(PowerHierarchy),
}

/// Refers a reading taken at `meter_point` to `reference_point`.
///
/// `truth` is the machine's actual conversion chain (which produced the
/// reading); `accounting` is what the submitter uses to convert.
pub fn refer_reading(
    watts: f64,
    meter_point: MeasurementPoint,
    reference_point: MeasurementPoint,
    truth: &PowerHierarchy,
    accounting: LossAccounting,
) -> Result<f64> {
    if !(watts >= 0.0 && watts.is_finite()) {
        return Err(MethodError::InvalidConfig {
            field: "watts",
            reason: "reading must be non-negative and finite",
        });
    }
    truth.validate()?;
    let h = match accounting {
        LossAccounting::Measured => *truth,
        LossAccounting::ManufacturerData(claimed) => {
            claimed.validate()?;
            claimed
        }
    };
    Ok(h.convert(watts, meter_point, reference_point))
}

/// The relative error in the referred power from using claimed instead of
/// true efficiencies, for a reading at `meter_point` referred to
/// `reference_point`.
pub fn accounting_bias(
    truth: &PowerHierarchy,
    claimed: &PowerHierarchy,
    meter_point: MeasurementPoint,
    reference_point: MeasurementPoint,
) -> Result<f64> {
    truth.validate()?;
    claimed.validate()?;
    // For the same physical load, the true referred value uses the true
    // chain; the submitted value uses the claimed chain.
    let w = 1_000.0;
    let true_ref = truth.convert(w, meter_point, reference_point);
    let claimed_ref = claimed.convert(w, meter_point, reference_point);
    Ok(claimed_ref / true_ref - 1.0)
}

/// A typical optimistic data sheet: every stage claimed ~2 points better
/// than `truth` (vendors quote best-point efficiency; real loads sit off
/// the peak).
pub fn optimistic_datasheet(truth: &PowerHierarchy) -> PowerHierarchy {
    PowerHierarchy {
        psu_efficiency: (truth.psu_efficiency + 0.02).min(0.999),
        pdu_efficiency: (truth.pdu_efficiency + 0.005).min(0.999),
        ups_efficiency: (truth.ups_efficiency + 0.02).min(0.999),
        transformer_efficiency: (truth.transformer_efficiency + 0.005).min(0.999),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> PowerHierarchy {
        PowerHierarchy::typical()
    }

    #[test]
    fn measured_accounting_is_exact() {
        let t = truth();
        // A 1 kW load read at the PDU, referred to the node wall.
        let at_pdu = t.convert(
            1_000.0,
            MeasurementPoint::NodeWall,
            MeasurementPoint::PduInput,
        );
        let back = refer_reading(
            at_pdu,
            MeasurementPoint::PduInput,
            MeasurementPoint::NodeWall,
            &t,
            LossAccounting::Measured,
        )
        .unwrap();
        assert!((back - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn optimistic_datasheet_understates_power() {
        let t = truth();
        let claimed = optimistic_datasheet(&t);
        // Meter at UPS input, reference at node wall: the claimed chain
        // says less of the UPS reading is loss, so more is compute...
        // no: referring *downstream* divides by fewer losses under the
        // optimistic sheet, LOWERING the claimed node-wall power.
        let bias = accounting_bias(
            &t,
            &claimed,
            MeasurementPoint::UpsInput,
            MeasurementPoint::NodeWall,
        )
        .unwrap();
        assert!(bias > 0.0, "bias = {bias}");
        // ~2-3% for PDU+UPS stage optimism.
        assert!((0.005..0.06).contains(&bias), "bias = {bias}");
    }

    #[test]
    fn bias_grows_with_distance_from_reference() {
        let t = truth();
        let claimed = optimistic_datasheet(&t);
        let near = accounting_bias(
            &t,
            &claimed,
            MeasurementPoint::PduInput,
            MeasurementPoint::NodeWall,
        )
        .unwrap()
        .abs();
        let far = accounting_bias(
            &t,
            &claimed,
            MeasurementPoint::FacilityInput,
            MeasurementPoint::NodeWall,
        )
        .unwrap()
        .abs();
        assert!(far > near, "far {far} vs near {near}");
    }

    #[test]
    fn upstream_measurement_needs_no_accounting() {
        // Measuring at the reference point itself: zero bias whatever the
        // data sheet claims — the reason the methodology prefers upstream
        // measurement.
        let t = truth();
        let claimed = optimistic_datasheet(&t);
        let bias = accounting_bias(
            &t,
            &claimed,
            MeasurementPoint::NodeWall,
            MeasurementPoint::NodeWall,
        )
        .unwrap();
        assert!(bias.abs() < 1e-12);
    }

    #[test]
    fn validation() {
        let t = truth();
        assert!(refer_reading(
            f64::NAN,
            MeasurementPoint::PduInput,
            MeasurementPoint::NodeWall,
            &t,
            LossAccounting::Measured
        )
        .is_err());
        let mut bad = t;
        bad.psu_efficiency = 0.0;
        assert!(accounting_bias(
            &t,
            &bad,
            MeasurementPoint::PduInput,
            MeasurementPoint::NodeWall
        )
        .is_err());
    }
}

//! Gaming the methodology — the paper's adversarial analyses.
//!
//! Three documented exploits:
//!
//! * **Optimal interval** (Section 3): with Level 1's 20% window, pick the
//!   window where power is lowest. TSUBAME-KFC gained 10.9% this way on
//!   the November 2013 list; Rohr et al. showed L-CSC could have gained
//!   23.9%. [`optimal_interval`] runs the scan.
//! * **DVFS-phase timing** (Section 3): DVFS is explicitly allowed; if the
//!   measurement window can be placed where the governor selects its
//!   lowest voltages, the high-power phases are never seen.
//!   [`dvfs_gaming_schedule`] constructs the colluding governor.
//! * **VID cherry-picking** (Section 5): "by measuring only nodes with low
//!   VID, it is possible to obtain a favorably biased efficiency result."
//!   [`vid_bias`] quantifies the bias.

use crate::window::TimingRule;
use crate::{MethodError, Result};
use power_sim::cluster::Cluster;
use power_sim::dvfs::{Governor, PState};
use power_sim::trace::SystemTrace;
use power_workload::RunPhases;
use serde::{Deserialize, Serialize};

/// The outcome of an optimal-interval scan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalScan {
    /// Average power over the full core phase (the honest number), watts.
    pub honest_w: f64,
    /// The legal window with the lowest average power.
    pub best_window: (f64, f64),
    /// Average power over that window, watts.
    pub best_w: f64,
    /// The legal window with the highest average power.
    pub worst_window: (f64, f64),
    /// Average power over that window, watts.
    pub worst_w: f64,
    /// Number of placements scanned.
    pub placements: usize,
}

impl IntervalScan {
    /// Relative power reduction from choosing the optimal interval:
    /// `1 - best/honest`. This is the paper's "10.9%" / "23.9%" number
    /// (equal to the relative efficiency overstatement).
    pub fn gaming_gain(&self) -> f64 {
        1.0 - self.best_w / self.honest_w
    }

    /// Spread between two honest-but-unlucky submitters:
    /// `(worst - best) / honest`. This is the ">20% between measurements
    /// of the same system" problem.
    pub fn measurement_spread(&self) -> f64 {
        (self.worst_w - self.best_w) / self.honest_w
    }
}

/// Scans every legal placement of `rule`'s window over a system trace and
/// reports the best and worst cases.
///
/// Each placement is an O(1) prefix-sum window query on the trace (the
/// first query builds the cumulative array), so the scan costs
/// O(samples + placements) rather than O(samples × placements) — dense
/// scans over long traces are cheap.
pub fn optimal_interval(
    trace: &SystemTrace,
    phases: &RunPhases,
    rule: &TimingRule,
    placements: usize,
) -> Result<IntervalScan> {
    if placements < 2 {
        return Err(MethodError::InvalidConfig {
            field: "placements",
            reason: "at least two placements are required for a scan",
        });
    }
    let honest = trace
        .window_average(phases.core_start(), phases.core_end())
        .map_err(MethodError::Sim)?;
    let mut best: Option<((f64, f64), f64)> = None;
    let mut worst: Option<((f64, f64), f64)> = None;
    let scan = rule.placements(placements);
    for &p in &scan {
        let windows = rule.windows(phases, p)?;
        // Average over the rule's windows (single window for L1).
        let mut acc = 0.0;
        for &(a, b) in &windows {
            acc += trace.window_average(a, b).map_err(MethodError::Sim)?;
        }
        let avg = acc / windows.len() as f64;
        let w = windows[0];
        if best.is_none_or(|(_, b)| avg < b) {
            best = Some((w, avg));
        }
        if worst.is_none_or(|(_, b)| avg > b) {
            worst = Some((w, avg));
        }
    }
    let (best_window, best_w) = best.expect("at least one placement");
    let (worst_window, worst_w) = worst.expect("at least one placement");
    Ok(IntervalScan {
        honest_w: honest,
        best_window,
        best_w,
        worst_window,
        worst_w,
        placements: scan.len(),
    })
}

/// The bias from metering only low-VID nodes instead of a fair sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VidBias {
    /// Mean steady-state power of the `n` lowest-VID nodes, watts.
    pub cherry_picked_w: f64,
    /// Mean steady-state power over the whole machine, watts.
    pub fair_w: f64,
    /// Relative understatement of power: `1 - cherry/fair`.
    pub bias: f64,
    /// Sample size used.
    pub n: usize,
}

/// Quantifies the VID cherry-picking bias on `cluster` at full load.
///
/// The bias only exists when the governor honours VIDs (at fixed voltage
/// the paper found efficiency "unrelated to the VID").
pub fn vid_bias(cluster: &Cluster, n: usize, temp_c: f64) -> Result<VidBias> {
    let total = cluster.len();
    if n == 0 || n > total {
        return Err(MethodError::InvalidConfig {
            field: "n",
            reason: "sample size must be in 1..=total_nodes",
        });
    }
    let order = cluster.nodes_by_vid();
    let mut cherry = 0.0;
    for &node in order.iter().take(n) {
        cherry += cluster.node_power(node, 0.0, 1.0, temp_c)?.wall_w;
    }
    let cherry = cherry / n as f64;
    let mut fair = 0.0;
    for node in 0..total {
        fair += cluster.node_power(node, 0.0, 1.0, temp_c)?.wall_w;
    }
    let fair = fair / total as f64;
    Ok(VidBias {
        cherry_picked_w: cherry,
        fair_w: fair,
        bias: 1.0 - cherry / fair,
        n,
    })
}

/// Builds a governor that colludes with a short measurement window: it
/// runs the `efficient` operating point inside `[window.0, window.1)` and
/// the `fast` point elsewhere, so a Level 1 measurement placed on the
/// window sees only the low-power phase while performance benefits from
/// the fast phase for most of the run.
pub fn dvfs_gaming_schedule(fast: PState, efficient: PState, window: (f64, f64)) -> Governor {
    Governor::Schedule(vec![
        (f64::NEG_INFINITY, fast),
        (window.0, efficient),
        (window.1, fast),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use power_sim::engine::{MeterScope, SimulationConfig, Simulator};
    use power_sim::systems;
    use power_sim::vid::VoltagePolicy;
    use power_sim::Cluster;

    fn sim_config(dt: f64) -> SimulationConfig {
        SimulationConfig {
            dt,
            noise_sigma: 0.005,
            common_noise_sigma: 0.002,
            seed: 5,
            threads: 4,
        }
    }

    fn lcsc_trace() -> (SystemTrace, RunPhases) {
        let preset = systems::lcsc();
        let cluster = Cluster::build(preset.cluster_spec.clone()).unwrap();
        let wl = preset.workload.workload();
        let sim = Simulator::new(&cluster, wl, preset.balance, sim_config(20.0)).unwrap();
        (sim.system_trace(MeterScope::Wall).unwrap(), wl.phases())
    }

    #[test]
    fn lcsc_interval_gaming_matches_paper_scale() {
        let (trace, phases) = lcsc_trace();
        let scan = optimal_interval(&trace, &phases, &TimingRule::level1(), 101).unwrap();
        // Rohr et al.: 23.9% efficiency improvement by tweaking the time
        // interval (their scan was not limited to the middle 80%; within
        // it we still expect a double-digit gain).
        let gain = scan.gaming_gain();
        assert!(gain > 0.10, "gain = {gain:.3}");
        // The best window sits late in the run, where power tails off.
        assert!(scan.best_window.0 > phases.core_start() + 0.5 * phases.core());
        // And the submitter-luck spread exceeds 20% (Section 1).
        assert!(
            scan.measurement_spread() > 0.15,
            "{}",
            scan.measurement_spread()
        );
    }

    #[test]
    fn colosse_is_essentially_ungameable() {
        let preset = systems::colosse().with_total_nodes(96);
        let cluster = Cluster::build(preset.cluster_spec.clone()).unwrap();
        let wl = preset.workload.workload();
        let sim = Simulator::new(&cluster, wl, preset.balance, sim_config(60.0)).unwrap();
        let trace = sim.system_trace(MeterScope::Wall).unwrap();
        let scan = optimal_interval(&trace, &wl.phases(), &TimingRule::level1(), 101).unwrap();
        assert!(
            scan.gaming_gain() < 0.01,
            "flat CPU run should not be gameable: {}",
            scan.gaming_gain()
        );
    }

    #[test]
    fn full_core_rule_cannot_be_gamed() {
        let (trace, phases) = lcsc_trace();
        let scan = optimal_interval(&trace, &phases, &TimingRule::FullCore, 50).unwrap();
        // One placement only; best == worst == honest.
        assert!((scan.gaming_gain()).abs() < 1e-9);
        assert!(scan.measurement_spread().abs() < 1e-9);
    }

    #[test]
    fn vid_cherry_picking_biases_low() {
        // Build an L-CSC case-study machine where the governor honours
        // VIDs (the regime the exploit needs).
        let cs = systems::LcscCaseStudy::new();
        let mut spec = cs.cluster_spec.clone();
        spec.governor = cs.default_governor.clone();
        let cluster = Cluster::build(spec).unwrap();
        let bias = vid_bias(&cluster, 16, 60.0).unwrap();
        assert!(
            bias.bias > 0.005,
            "low-VID nodes should draw measurably less: {}",
            bias.bias
        );
        assert!(bias.cherry_picked_w < bias.fair_w);
    }

    #[test]
    fn vid_bias_vanishes_at_fixed_voltage() {
        let cs = systems::LcscCaseStudy::new();
        let cluster = Cluster::build(cs.cluster_spec.clone()).unwrap(); // tuned (fixed V)
        let bias = vid_bias(&cluster, 16, 60.0).unwrap();
        // The paper's observation: at fixed voltage, efficiency is
        // unrelated to VID — only residual node spread remains.
        assert!(
            bias.bias.abs() < 0.01,
            "fixed-voltage VID bias should be negligible: {}",
            bias.bias
        );
    }

    #[test]
    fn dvfs_schedule_collusion() {
        let fast = PState {
            f_mhz: 900.0,
            voltage: VoltagePolicy::Fixed(1.15),
        };
        let eff = PState {
            f_mhz: 600.0,
            voltage: VoltagePolicy::Fixed(0.95),
        };
        let g = dvfs_gaming_schedule(fast, eff, (1000.0, 2000.0));
        assert_eq!(g.pstate(500.0, 1.0).f_mhz, 900.0);
        assert_eq!(g.pstate(1500.0, 1.0).f_mhz, 600.0);
        assert_eq!(g.pstate(2500.0, 1.0).f_mhz, 900.0);
        g.validate().unwrap();
    }

    #[test]
    fn scan_input_validation() {
        let (trace, phases) = lcsc_trace();
        assert!(optimal_interval(&trace, &phases, &TimingRule::level1(), 1).is_err());
        let cs = systems::LcscCaseStudy::new();
        let cluster = Cluster::build(cs.cluster_spec.clone()).unwrap();
        assert!(vid_bias(&cluster, 0, 60.0).is_err());
        assert!(vid_bias(&cluster, 10_000, 60.0).is_err());
    }
}

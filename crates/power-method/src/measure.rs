//! Executing a measurement plan against a simulated machine.
//!
//! [`measure`] is the end-to-end pipeline a submitting site runs: pick the
//! node subset the fraction rule demands, attach instruments, run the
//! workload, average the meters over the timing rule's window(s),
//! extrapolate linearly to the full machine, and compute FLOPS/W from the
//! benchmark's core-phase performance. Every paper experiment about
//! methodology quality is a comparison between [`Measurement`]s produced
//! under different plans.

use crate::extrapolate::{extrapolate, ExtrapolationReport};
use crate::level::{Granularity, Methodology};
use crate::subsystems::SubsystemOverheads;
use crate::{MethodError, Result};
use power_meter::campaign::Campaign;
use power_meter::device::{IntegratingMeter, MeterModel};
use power_meter::reading::Reading;
use power_sim::cluster::Cluster;
use power_sim::engine::{MeterScope, ProductRequest, SimulationConfig, Simulator};
use power_sim::store::TraceStore;
use power_stats::rng::substream;
use power_stats::sampling::sample_without_replacement;
use power_workload::{LoadBalance, Workload};
use serde::{Deserialize, Serialize};

/// How the metered node subset is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeSelection {
    /// Uniformly at random without replacement — the honest choice the
    /// paper's statistics assume.
    Random,
    /// The first `n` nodes by index (racks near the meters; common in
    /// practice, fine for homogeneous balanced loads).
    FirstN,
    /// The `n` nodes with the lowest VID silicon — the paper's Section 5
    /// cherry-picking exploit.
    LowestVid,
    /// Proportional draws from `racks` contiguous strata — how a site
    /// with one PDU meter per rack samples, and the honest answer to
    /// position-dependent effects like machine-room ambient gradients.
    StratifiedByRack {
        /// Number of contiguous racks to stratify over.
        racks: usize,
    },
}

/// Where a Level 1 short window is placed inside its legal range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WindowPlacement {
    /// Earliest legal position.
    Earliest,
    /// Centered.
    Middle,
    /// Latest legal position.
    Latest,
    /// Arbitrary position in `[0, 1]` of the legal range.
    Fraction(f64),
}

impl WindowPlacement {
    /// The placement as a fraction of the legal range.
    pub fn fraction(&self) -> f64 {
        match *self {
            WindowPlacement::Earliest => 0.0,
            WindowPlacement::Middle => 0.5,
            WindowPlacement::Latest => 1.0,
            WindowPlacement::Fraction(f) => f.clamp(0.0, 1.0),
        }
    }
}

/// A complete measurement plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasurementPlan {
    /// Which methodology variant to follow.
    pub methodology: Methodology,
    /// Instrument class to deploy.
    pub meter_model: MeterModel,
    /// Node-subset selection strategy.
    pub selection: NodeSelection,
    /// Short-window placement (ignored by full-coverage rules).
    pub placement: WindowPlacement,
    /// Non-compute subsystem power participating in the run; how much of
    /// it reaches the reported number depends on the methodology's
    /// subsystem rule (Aspect 3).
    pub overheads: SubsystemOverheads,
    /// Relative error bound of a Level 2 subsystem *estimate*.
    pub overhead_estimate_error: f64,
    /// Seed for node selection and instrument instantiation.
    pub seed: u64,
}

impl MeasurementPlan {
    /// An honest plan at the given methodology: random selection, middle
    /// placement, PDU-grade meters.
    pub fn honest(methodology: Methodology, seed: u64) -> Self {
        MeasurementPlan {
            methodology,
            meter_model: MeterModel::pdu_grade(),
            selection: NodeSelection::Random,
            placement: WindowPlacement::Middle,
            overheads: SubsystemOverheads::none(),
            overhead_estimate_error: 0.10,
            seed,
        }
    }

    /// Sets the machine's subsystem overheads.
    pub fn with_overheads(mut self, overheads: SubsystemOverheads) -> Self {
        self.overheads = overheads;
        self
    }
}

/// The outcome of executing a plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Methodology followed.
    pub methodology: Methodology,
    /// Machine size.
    pub total_nodes: usize,
    /// Metered node ids.
    pub metered_nodes: Vec<usize>,
    /// Measurement windows used (run-time seconds).
    pub windows: Vec<(f64, f64)>,
    /// Average power of the metered subset over the windows (watts).
    pub subset_power_w: f64,
    /// Subsystem overhead power included in the report (watts): zero for
    /// compute-only rules, the (possibly estimated) interconnect/storage/
    /// infrastructure total otherwise.
    pub overhead_w: f64,
    /// Reported full-system power: linear compute extrapolation plus the
    /// accounted overheads (watts).
    pub reported_power_w: f64,
    /// Per-node average powers over the windows (watts).
    pub per_node_w: Vec<f64>,
    /// Benchmark performance: flops retired per second over the core
    /// phase (0 if the workload reports no flop count).
    pub rmax_flops: f64,
    /// The accuracy assessment the paper recommends submitting.
    pub assessment: Option<ExtrapolationReport>,
}

impl Measurement {
    /// Reported energy efficiency in FLOPS/W (the Green500 metric).
    pub fn flops_per_watt(&self) -> f64 {
        if self.reported_power_w > 0.0 {
            self.rmax_flops / self.reported_power_w
        } else {
            0.0
        }
    }

    /// Fraction of the machine that was metered.
    pub fn machine_fraction(&self) -> f64 {
        self.metered_nodes.len() as f64 / self.total_nodes as f64
    }
}

/// Executes `plan` for `workload` running on `cluster`, caching simulation
/// sweeps in the process-wide [`TraceStore::global`].
///
/// `sim_config.dt` should divide the meter's sampling interval reasonably
/// (the meter resamples the simulated trace at its own rate).
pub fn measure(
    cluster: &Cluster,
    workload: &dyn Workload,
    balance: LoadBalance,
    sim_config: SimulationConfig,
    plan: &MeasurementPlan,
) -> Result<Measurement> {
    measure_with_store(
        TraceStore::global(),
        cluster,
        workload,
        balance,
        sim_config,
        plan,
    )
}

/// [`measure`] against a caller-supplied [`TraceStore`].
///
/// Servers and tests that need isolated cache accounting (hit/miss/
/// coalescing counters, an LRU bound) pass their own store; `measure`
/// delegates here with the global one.
pub fn measure_with_store(
    store: &TraceStore,
    cluster: &Cluster,
    workload: &dyn Workload,
    balance: LoadBalance,
    sim_config: SimulationConfig,
    plan: &MeasurementPlan,
) -> Result<Measurement> {
    let spec = plan.methodology.spec();
    let total = cluster.len();
    let phases = workload.phases();

    // Estimate per-node power for the fraction rule from a steady-state
    // probe of node 0 at mid-core utilization (a site would use nameplate
    // data or a pilot here).
    let mid_t = phases.core_start() + 0.5 * phases.core();
    let probe_u = workload.utilization(0, mid_t);
    let probe = cluster.node_power(0, mid_t, probe_u, 60.0)?;
    let n_required = spec.fraction.required_nodes(total, probe.wall_w)?;

    // Select the subset.
    let mut nodes: Vec<usize> = match plan.selection {
        NodeSelection::Random => {
            let mut rng = substream(plan.seed, 0x5E1);
            sample_without_replacement(&mut rng, total, n_required).map_err(MethodError::Stats)?
        }
        NodeSelection::FirstN => (0..n_required).collect(),
        NodeSelection::LowestVid => cluster
            .nodes_by_vid()
            .into_iter()
            .take(n_required)
            .collect(),
        NodeSelection::StratifiedByRack { racks } => {
            let racks = racks.clamp(1, total);
            let base = total / racks;
            let extra = total % racks;
            let sizes: Vec<usize> = (0..racks).map(|k| base + usize::from(k < extra)).collect();
            let mut rng = substream(plan.seed, 0x57A7);
            power_stats::sampling::stratified_sample(&mut rng, &sizes, n_required)
                .map_err(MethodError::Stats)?
        }
    };
    nodes.sort_unstable();

    // Simulate the metered subset — through the store, so repeated plans
    // over the same (machine, workload, config, subset) reuse one sweep
    // (window-placement scans hit this path hundreds of times).
    let sim = Simulator::new(cluster, workload, balance, sim_config)?;
    let products = store.products(&sim, &ProductRequest::subset_only(&nodes))?;
    let trace = products
        .subset_trace(MeterScope::Wall)
        .expect("subset was requested");

    // Windows from the timing rule.
    let windows = spec.timing.windows(&phases, plan.placement.fraction())?;

    // Meter the subset over each window and average.
    let mut per_window_aggregates = Vec::with_capacity(windows.len());
    let mut per_node_acc = vec![0.0f64; nodes.len()];
    match spec.granularity {
        Granularity::OneSamplePerSecond => {
            let campaign = Campaign::new(&nodes, plan.meter_model, plan.seed ^ 0xCA11)?;
            for &(from, to) in &windows {
                let result = campaign.run(trace, from, to, plan.seed ^ 0x0B5E)?;
                per_window_aggregates.push(result.aggregate.average_w);
                for (acc, r) in per_node_acc.iter_mut().zip(&result.readings) {
                    *acc += r.average_w;
                }
            }
        }
        Granularity::IntegratedEnergy => {
            // Level 3: continuously integrating meters, one per node.
            for &(from, to) in &windows {
                let mut readings = Vec::with_capacity(nodes.len());
                for (k, series) in trace.samples.iter().enumerate() {
                    let mut rng = substream(plan.seed ^ 0x17E6, k as u64);
                    let meter = IntegratingMeter::new(&mut rng, plan.meter_model.accuracy_class)?;
                    readings.push(meter.measure(series, trace.t0, trace.dt, from, to)?);
                }
                let agg = Reading::sum(&readings).expect("non-empty subset");
                per_window_aggregates.push(agg.average_w);
                for (acc, r) in per_node_acc.iter_mut().zip(&readings) {
                    *acc += r.average_w;
                }
            }
        }
    }
    let n_windows = windows.len() as f64;
    let subset_power = per_window_aggregates.iter().sum::<f64>() / n_windows;
    let per_node_w: Vec<f64> = per_node_acc.iter().map(|a| a / n_windows).collect();

    plan.overheads.validate()?;
    let overhead_w = plan.overheads.accounted_w(
        spec.subsystems,
        total,
        plan.overhead_estimate_error,
        plan.seed,
    );
    let reported = subset_power * total as f64 / nodes.len() as f64 + overhead_w;
    let rmax = if workload.total_flops() > 0.0 {
        workload.total_flops() / phases.core()
    } else {
        0.0
    };
    let assessment = if per_node_w.len() >= 2 {
        Some(extrapolate(&per_node_w, total, 0.95)?)
    } else {
        None
    };

    Ok(Measurement {
        methodology: plan.methodology,
        total_nodes: total,
        metered_nodes: nodes,
        windows,
        subset_power_w: subset_power,
        overhead_w,
        reported_power_w: reported,
        per_node_w,
        rmax_flops: rmax,
        assessment,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use power_sim::systems;
    use power_sim::Cluster;

    fn sim_config() -> SimulationConfig {
        SimulationConfig {
            dt: 10.0,
            noise_sigma: 0.01,
            common_noise_sigma: 0.002,
            seed: 77,
            threads: 4,
        }
    }

    fn lcsc_setup() -> (Cluster, systems::SystemPreset) {
        let preset = systems::lcsc();
        let cluster = Cluster::build(preset.cluster_spec.clone()).unwrap();
        (cluster, preset)
    }

    #[test]
    fn level1_measurement_runs_end_to_end() {
        let (cluster, preset) = lcsc_setup();
        let plan = MeasurementPlan::honest(Methodology::Level1, 1);
        let m = measure(
            &cluster,
            preset.workload.workload(),
            preset.balance,
            sim_config(),
            &plan,
        )
        .unwrap();
        assert_eq!(m.total_nodes, 160);
        // L1 on 160 nodes at ~370 W: 1/64 -> 3 nodes, but 2 kW floor -> 6.
        assert!(m.metered_nodes.len() >= 3, "{}", m.metered_nodes.len());
        assert_eq!(m.windows.len(), 1);
        // Reported power in the right ballpark (tens of kW).
        assert!(
            (40_000.0..80_000.0).contains(&m.reported_power_w),
            "reported {}",
            m.reported_power_w
        );
        assert!(m.flops_per_watt() > 0.0);
        assert!(m.assessment.is_some());
    }

    #[test]
    fn window_placement_changes_level1_result_on_gpu_system() {
        let (cluster, preset) = lcsc_setup();
        let wl = preset.workload.workload();
        let early = measure(
            &cluster,
            wl,
            preset.balance,
            sim_config(),
            &MeasurementPlan {
                placement: WindowPlacement::Earliest,
                ..MeasurementPlan::honest(Methodology::Level1, 1)
            },
        )
        .unwrap();
        let late = measure(
            &cluster,
            wl,
            preset.balance,
            sim_config(),
            &MeasurementPlan {
                placement: WindowPlacement::Latest,
                ..MeasurementPlan::honest(Methodology::Level1, 1)
            },
        )
        .unwrap();
        // Section 3: placement is worth double-digit percent on L-CSC.
        let swing = (early.reported_power_w - late.reported_power_w) / early.reported_power_w;
        assert!(swing > 0.10, "swing = {swing:.3}");
        // And the reported *efficiency* moves the other way.
        assert!(late.flops_per_watt() > early.flops_per_watt());
    }

    #[test]
    fn revised_methodology_is_placement_invariant() {
        let (cluster, preset) = lcsc_setup();
        let wl = preset.workload.workload();
        let a = measure(
            &cluster,
            wl,
            preset.balance,
            sim_config(),
            &MeasurementPlan {
                placement: WindowPlacement::Earliest,
                ..MeasurementPlan::honest(Methodology::Revised, 1)
            },
        )
        .unwrap();
        let b = measure(
            &cluster,
            wl,
            preset.balance,
            sim_config(),
            &MeasurementPlan {
                placement: WindowPlacement::Latest,
                ..MeasurementPlan::honest(Methodology::Revised, 1)
            },
        )
        .unwrap();
        assert_eq!(a.reported_power_w, b.reported_power_w);
        // Revised rule on 160 nodes: max(16, 16) = 16 nodes.
        assert_eq!(a.metered_nodes.len(), 16);
    }

    #[test]
    fn level3_meters_everything() {
        let (cluster, preset) = lcsc_setup();
        let m = measure(
            &cluster,
            preset.workload.workload(),
            preset.balance,
            sim_config(),
            &MeasurementPlan::honest(Methodology::Level3, 2),
        )
        .unwrap();
        assert_eq!(m.metered_nodes.len(), 160);
        assert_eq!(m.machine_fraction(), 1.0);
        // Full census: assessment collapses to ~zero width.
        assert!(m.assessment.unwrap().relative_accuracy < 1e-9);
    }

    #[test]
    fn selection_strategies_differ() {
        let (cluster, preset) = lcsc_setup();
        let wl = preset.workload.workload();
        let base = MeasurementPlan::honest(Methodology::Revised, 3);
        let random = measure(&cluster, wl, preset.balance, sim_config(), &base).unwrap();
        let cherry = measure(
            &cluster,
            wl,
            preset.balance,
            sim_config(),
            &MeasurementPlan {
                selection: NodeSelection::LowestVid,
                ..base
            },
        )
        .unwrap();
        assert_ne!(random.metered_nodes, cherry.metered_nodes);
        let first = measure(
            &cluster,
            wl,
            preset.balance,
            sim_config(),
            &MeasurementPlan {
                selection: NodeSelection::FirstN,
                ..base
            },
        )
        .unwrap();
        assert_eq!(first.metered_nodes, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn stratified_selection_covers_all_racks() {
        let (cluster, preset) = lcsc_setup();
        let m = measure(
            &cluster,
            preset.workload.workload(),
            preset.balance,
            sim_config(),
            &MeasurementPlan {
                selection: NodeSelection::StratifiedByRack { racks: 8 },
                ..MeasurementPlan::honest(Methodology::Revised, 13)
            },
        )
        .unwrap();
        // 16 nodes over 8 racks of 20: exactly 2 per rack.
        assert_eq!(m.metered_nodes.len(), 16);
        for rack in 0..8 {
            let in_rack = m
                .metered_nodes
                .iter()
                .filter(|&&n| n >= rack * 20 && n < (rack + 1) * 20)
                .count();
            assert_eq!(in_rack, 2, "rack {rack}");
        }
    }

    #[test]
    fn stratified_selection_unbiased_under_ambient_gradient() {
        // Under a cold-to-hot aisle gradient, stratified rack coverage
        // represents every thermal zone; FirstN reads only the cold end
        // and understates power.
        let mut spec = power_sim::systems::tu_dresden().cluster_spec;
        spec.ambient_gradient_c = 12.0;
        spec.node.thermal.tau_s = 60.0;
        let cluster = Cluster::build(spec).unwrap();
        let preset = power_sim::systems::tu_dresden();
        let wl = preset.workload.workload();
        let run = |selection| {
            measure(
                &cluster,
                wl,
                preset.balance,
                sim_config(),
                &MeasurementPlan {
                    selection,
                    ..MeasurementPlan::honest(Methodology::Revised, 17)
                },
            )
            .unwrap()
        };
        // Level 3 census as ground truth.
        let truth = measure(
            &cluster,
            wl,
            preset.balance,
            sim_config(),
            &MeasurementPlan::honest(Methodology::Level3, 17),
        )
        .unwrap()
        .reported_power_w;
        let strat = run(NodeSelection::StratifiedByRack { racks: 7 });
        let first = run(NodeSelection::FirstN);
        let err = |m: &Measurement| (m.reported_power_w - truth).abs() / truth;
        assert!(
            err(&strat) < err(&first) + 0.005,
            "stratified {:.4} vs FirstN {:.4}",
            err(&strat),
            err(&first)
        );
        // FirstN is biased low (cold end).
        assert!(first.reported_power_w < truth);
    }

    #[test]
    fn overheads_accounted_by_subsystem_rule() {
        use crate::subsystems::SubsystemOverheads;
        // A flat workload (FIRESTARTER) so the timing window reads the
        // same power at every level and Aspect 3 is isolated.
        let preset = power_sim::systems::tu_dresden();
        let cluster = Cluster::build(preset.cluster_spec.clone()).unwrap();
        let wl = preset.workload.workload();
        let overheads = SubsystemOverheads::typical_cluster(210);
        let truth = overheads.total_w(210);

        let run = |methodology| {
            measure(
                &cluster,
                wl,
                preset.balance,
                sim_config(),
                &MeasurementPlan::honest(methodology, 9).with_overheads(overheads),
            )
            .unwrap()
        };
        let l1 = run(Methodology::Level1);
        let l2 = run(Methodology::Level2);
        let l3 = run(Methodology::Level3);
        // L1 hides the overheads entirely.
        assert_eq!(l1.overhead_w, 0.0);
        // L2 estimates them within the configured error bound.
        assert!((l2.overhead_w - truth).abs() <= truth * 0.10 + 1e-9);
        assert!(l2.overhead_w > 0.0);
        // L3 measures them exactly.
        assert!((l3.overhead_w - truth).abs() < 1e-9);
        // Consequence: the compute-only L1 number understates power (and
        // so overstates efficiency) by roughly the overhead share.
        let gap = l3.reported_power_w - l1.reported_power_w;
        assert!(
            gap > 0.7 * truth && gap < 1.3 * truth + 0.05 * l3.reported_power_w,
            "power gap {gap:.0} W vs overheads {truth:.0} W"
        );
    }

    #[test]
    fn placement_fraction_clamps() {
        assert_eq!(WindowPlacement::Fraction(2.0).fraction(), 1.0);
        assert_eq!(WindowPlacement::Fraction(-1.0).fraction(), 0.0);
        assert_eq!(WindowPlacement::Middle.fraction(), 0.5);
    }
}

//! Submission validation: does a claimed measurement satisfy its level?
//!
//! The lists can only check what a submission declares; this module
//! encodes those checks. It is also the enforcement point for the paper's
//! revised rules (full core phase, max(16, 10%) nodes, accuracy
//! assessment).

use crate::level::MethodologySpec;
use crate::report::Submission;
use crate::window::TimingRule;
use power_workload::RunPhases;
use serde::{Deserialize, Serialize};

/// A specific way a submission violates its claimed methodology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Violation {
    /// The measurement window is shorter than the timing rule requires.
    WindowTooShort {
        /// Seconds covered.
        got_s: f64,
        /// Seconds required.
        need_s: f64,
    },
    /// A short window strays outside the middle 80% of the core phase.
    WindowOutsideMiddle80,
    /// A full-coverage rule was claimed but the windows do not span the
    /// core phase.
    CorePhaseNotCovered,
    /// Too few nodes were metered for the machine fraction rule.
    TooFewNodes {
        /// Nodes metered.
        got: usize,
        /// Nodes required.
        need: usize,
    },
    /// The aggregate measured power is below the rule's floor.
    BelowPowerFloor {
        /// Watts measured.
        got_w: f64,
        /// Watts required.
        need_w: f64,
    },
    /// The methodology requires an accuracy assessment and none was given.
    MissingAccuracyAssessment,
}

/// Checks `submission` against `spec` for a run with the given phases.
///
/// Returns every violation found (empty = compliant).
pub fn validate(
    submission: &Submission,
    spec: &MethodologySpec,
    phases: &RunPhases,
) -> Vec<Violation> {
    let mut violations = Vec::new();

    // Timing checks.
    let covered: f64 = submission
        .windows
        .iter()
        .map(|&(a, b)| (b - a).max(0.0))
        .sum();
    match spec.timing {
        TimingRule::ShortWindow { .. } => {
            let need = spec.timing.window_length(phases);
            if covered + 1e-9 < need {
                violations.push(Violation::WindowTooShort {
                    got_s: covered,
                    need_s: need,
                });
            }
            let (lo, hi) = phases.core_middle_80();
            if submission
                .windows
                .iter()
                .any(|&(a, b)| a < lo - 1e-9 || b > hi + 1e-9)
            {
                violations.push(Violation::WindowOutsideMiddle80);
            }
        }
        TimingRule::SpacedSegments { .. } | TimingRule::FullCore => {
            // Full coverage: the union of windows must span the core phase.
            let starts_ok = submission
                .windows
                .iter()
                .map(|w| w.0)
                .fold(f64::INFINITY, f64::min)
                <= phases.core_start() + 1e-9;
            let ends_ok = submission
                .windows
                .iter()
                .map(|w| w.1)
                .fold(f64::NEG_INFINITY, f64::max)
                >= phases.core_end() - 1e-9;
            let length_ok = covered >= phases.core() - 1e-6;
            if !(starts_ok && ends_ok && length_ok) {
                violations.push(Violation::CorePhaseNotCovered);
            }
        }
    }

    // Fraction checks. Reconstruct the two floors from the rule.
    match spec.fraction {
        crate::fraction::FractionRule::FractionWithPowerFloor {
            min_fraction,
            min_power_w,
        } => {
            let need = (submission.total_nodes as f64 * min_fraction).ceil() as usize;
            if submission.metered_nodes < need && submission.metered_nodes < submission.total_nodes
            {
                violations.push(Violation::TooFewNodes {
                    got: submission.metered_nodes,
                    need,
                });
            }
            if submission.measured_subset_power_w < min_power_w
                && submission.metered_nodes < submission.total_nodes
            {
                violations.push(Violation::BelowPowerFloor {
                    got_w: submission.measured_subset_power_w,
                    need_w: min_power_w,
                });
            }
        }
        crate::fraction::FractionRule::All => {
            if submission.metered_nodes < submission.total_nodes {
                violations.push(Violation::TooFewNodes {
                    got: submission.metered_nodes,
                    need: submission.total_nodes,
                });
            }
        }
        crate::fraction::FractionRule::NodesOrFraction {
            min_nodes,
            min_fraction,
        } => {
            let need = min_nodes
                .max((submission.total_nodes as f64 * min_fraction).ceil() as usize)
                .min(submission.total_nodes);
            if submission.metered_nodes < need {
                violations.push(Violation::TooFewNodes {
                    got: submission.metered_nodes,
                    need,
                });
            }
        }
    }

    // Accuracy assessment.
    if spec.requires_accuracy_assessment && submission.claimed_accuracy.is_none() {
        violations.push(Violation::MissingAccuracyAssessment);
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::Methodology;

    fn phases() -> RunPhases {
        RunPhases::new(100.0, 1000.0, 50.0).unwrap()
    }

    fn l1_submission() -> Submission {
        Submission {
            system: "demo".into(),
            methodology: Methodology::Level1,
            reported_power_w: 100_000.0,
            rmax_flops: 1e15,
            metered_nodes: 16,
            total_nodes: 1024,
            measured_subset_power_w: 6_400.0,
            // 160 s window inside the middle 80% ([200, 1000]).
            windows: vec![(400.0, 560.0)],
            claimed_accuracy: None,
        }
    }

    #[test]
    fn compliant_level1_passes() {
        let s = l1_submission();
        let v = validate(&s, &Methodology::Level1.spec(), &phases());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn short_window_flagged() {
        let mut s = l1_submission();
        s.windows = vec![(400.0, 450.0)]; // 50 s < 160 s required
        let v = validate(&s, &Methodology::Level1.spec(), &phases());
        assert!(matches!(v[0], Violation::WindowTooShort { .. }));
    }

    #[test]
    fn window_outside_middle80_flagged() {
        let mut s = l1_submission();
        s.windows = vec![(120.0, 280.0)]; // starts before core_start + 10%
        let v = validate(&s, &Methodology::Level1.spec(), &phases());
        assert!(v.contains(&Violation::WindowOutsideMiddle80));
    }

    #[test]
    fn too_few_nodes_flagged() {
        let mut s = l1_submission();
        s.metered_nodes = 10; // < 1024/64 = 16
        let v = validate(&s, &Methodology::Level1.spec(), &phases());
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::TooFewNodes { need: 16, .. })));
    }

    #[test]
    fn power_floor_flagged() {
        let mut s = l1_submission();
        s.measured_subset_power_w = 1_500.0;
        let v = validate(&s, &Methodology::Level1.spec(), &phases());
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::BelowPowerFloor { .. })));
    }

    #[test]
    fn revised_requires_full_core_and_assessment() {
        let mut s = l1_submission();
        s.methodology = Methodology::Revised;
        s.metered_nodes = 110; // >= max(16, 10% of 1024 = 103)
        let spec = Methodology::Revised.spec();
        let v = validate(&s, &spec, &phases());
        assert!(v.contains(&Violation::CorePhaseNotCovered));
        assert!(v.contains(&Violation::MissingAccuracyAssessment));

        // Fix it up: full core window + assessment + enough nodes.
        s.windows = vec![(100.0, 1100.0)];
        s.claimed_accuracy = Some(0.011);
        let v = validate(&s, &spec, &phases());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn revised_node_floor() {
        let mut s = l1_submission();
        s.methodology = Methodology::Revised;
        s.windows = vec![(100.0, 1100.0)];
        s.claimed_accuracy = Some(0.011);
        s.metered_nodes = 50; // < 10% of 1024
        let v = validate(&s, &Methodology::Revised.spec(), &phases());
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::TooFewNodes { need: 103, .. })));
    }

    #[test]
    fn level3_census_required() {
        let mut s = l1_submission();
        s.methodology = Methodology::Level3;
        s.windows = vec![(100.0, 1100.0)];
        s.metered_nodes = 1023;
        let v = validate(&s, &Methodology::Level3.spec(), &phases());
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::TooFewNodes { need: 1024, .. })));
    }

    #[test]
    fn level2_segments_accepted_as_full_coverage() {
        let mut s = l1_submission();
        s.methodology = Methodology::Level2;
        s.metered_nodes = 128;
        s.measured_subset_power_w = 51_200.0;
        // Ten contiguous segments spanning the core phase.
        s.windows = (0..10)
            .map(|k| (100.0 + k as f64 * 100.0, 200.0 + k as f64 * 100.0))
            .collect();
        let v = validate(&s, &Methodology::Level2.spec(), &phases());
        assert!(v.is_empty(), "{v:?}");
    }
}

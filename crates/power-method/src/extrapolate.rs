//! Subset-to-full-system extrapolation with accuracy assessment.
//!
//! The methodology extrapolates measured subset power linearly to the full
//! machine; the paper's closing recommendation is "that all submissions
//! include an assessment of their measurement accuracy". This module
//! produces that assessment: a t-based confidence interval (paper
//! Equation 1) with the finite-population correction, scaled to the
//! full-system estimate.

use power_stats::ci::{mean_ci_t_finite, ConfidenceInterval};
use power_stats::summary::Summary;
use serde::{Deserialize, Serialize};

use crate::{MethodError, Result};

/// A full-system power estimate derived from a node sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExtrapolationReport {
    /// Machine size.
    pub total_nodes: usize,
    /// Nodes in the sample.
    pub sampled_nodes: usize,
    /// Mean per-node power in the sample (watts).
    pub node_mean_w: f64,
    /// Sample standard deviation of per-node power (watts).
    pub node_sigma_w: f64,
    /// Coefficient of variation `sigma/mu` of the sample.
    pub cv: f64,
    /// Full-system power estimate (watts).
    pub estimate_w: f64,
    /// Lower bound of the full-system confidence interval (watts).
    pub ci_lower_w: f64,
    /// Upper bound of the full-system confidence interval (watts).
    pub ci_upper_w: f64,
    /// Confidence level of the interval.
    pub confidence: f64,
    /// Relative accuracy `lambda`: CI half-width over the estimate.
    pub relative_accuracy: f64,
}

impl ExtrapolationReport {
    /// The full-system confidence interval as a [`ConfidenceInterval`].
    pub fn ci(&self) -> ConfidenceInterval {
        ConfidenceInterval {
            estimate: self.estimate_w,
            half_width: (self.ci_upper_w - self.ci_lower_w) / 2.0,
            confidence: self.confidence,
        }
    }

    /// Whether the assessment meets an accuracy target (e.g. the paper's
    /// 1%-at-95% planning point).
    pub fn meets_accuracy(&self, lambda: f64) -> bool {
        self.relative_accuracy <= lambda
    }
}

/// Extrapolates per-node sample powers to a machine of `total_nodes`.
///
/// A full census (`sample.len() == total_nodes`) yields a zero-width
/// interval (the finite-population correction collapses).
pub fn extrapolate(
    per_node_w: &[f64],
    total_nodes: usize,
    confidence: f64,
) -> Result<ExtrapolationReport> {
    if per_node_w.len() < 2 {
        return Err(MethodError::InvalidConfig {
            field: "per_node_w",
            reason: "at least two sampled nodes are required for an assessment",
        });
    }
    if per_node_w.len() > total_nodes {
        return Err(MethodError::InvalidConfig {
            field: "total_nodes",
            reason: "sample cannot exceed the machine size",
        });
    }
    let summary = Summary::from_slice(per_node_w);
    let node_ci = mean_ci_t_finite(&summary, confidence, total_nodes as u64)?;
    let scale = total_nodes as f64;
    let estimate = node_ci.estimate * scale;
    let half = node_ci.half_width * scale;
    Ok(ExtrapolationReport {
        total_nodes,
        sampled_nodes: per_node_w.len(),
        node_mean_w: summary.mean(),
        node_sigma_w: summary.sample_std_dev()?,
        cv: summary.coefficient_of_variation()?,
        estimate_w: estimate,
        ci_lower_w: estimate - half,
        ci_upper_w: estimate + half,
        confidence,
        relative_accuracy: half / estimate.abs(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use power_stats::rng::{normal_draw, seeded};

    fn sample(n: usize, mu: f64, sigma: f64, seed: u64) -> Vec<f64> {
        let mut rng = seeded(seed);
        (0..n).map(|_| normal_draw(&mut rng, mu, sigma)).collect()
    }

    #[test]
    fn estimate_scales_linearly() {
        let s = sample(16, 400.0, 8.0, 1);
        let r = extrapolate(&s, 1024, 0.95).unwrap();
        let mean: f64 = s.iter().sum::<f64>() / 16.0;
        assert!((r.estimate_w - mean * 1024.0).abs() < 1e-6);
        assert_eq!(r.total_nodes, 1024);
        assert_eq!(r.sampled_nodes, 16);
    }

    #[test]
    fn bigger_samples_tighter_intervals() {
        let small = extrapolate(&sample(4, 400.0, 8.0, 2), 10_000, 0.95).unwrap();
        let large = extrapolate(&sample(100, 400.0, 8.0, 2), 10_000, 0.95).unwrap();
        assert!(large.relative_accuracy < small.relative_accuracy);
    }

    #[test]
    fn census_has_zero_width() {
        let s = sample(50, 400.0, 8.0, 3);
        let r = extrapolate(&s, 50, 0.95).unwrap();
        assert!(r.relative_accuracy < 1e-12);
        assert!((r.ci_upper_w - r.ci_lower_w).abs() < 1e-6);
    }

    #[test]
    fn paper_regime_meets_1_5_pct() {
        // 16 nodes at cv ~ 2% should assess within ~1.5-2% at 95%.
        let s = sample(16, 400.0, 8.0, 4);
        let r = extrapolate(&s, 10_000, 0.95).unwrap();
        assert!(r.relative_accuracy < 0.03, "{}", r.relative_accuracy);
        assert!(r.meets_accuracy(0.03));
        assert!(!r.meets_accuracy(r.relative_accuracy / 2.0));
    }

    #[test]
    fn ci_accessor_consistent() {
        let s = sample(20, 400.0, 8.0, 5);
        let r = extrapolate(&s, 1000, 0.95).unwrap();
        let ci = r.ci();
        assert!((ci.lower() - r.ci_lower_w).abs() < 1e-9);
        assert!((ci.upper() - r.ci_upper_w).abs() < 1e-9);
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(extrapolate(&[400.0], 100, 0.95).is_err());
        assert!(extrapolate(&[400.0, 410.0, 390.0], 2, 0.95).is_err());
    }
}

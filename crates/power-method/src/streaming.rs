//! Online (streaming) execution of a methodology's timing rule.
//!
//! [`crate::measure`] computes a node's contribution *after* the run: it
//! asks a meter for one averaged reading per timing window and averages
//! those readings. A live campaign sees the same samples one at a time.
//! [`OnlineLevelMeasurement`] is the order-insensitive accumulator that
//! makes the two paths agree: it keeps an overlap-weighted running mean
//! per (node, window) pair and reduces exactly the way the batch path
//! does — per-window average first, then the unweighted mean across
//! windows — so a Level 1 short window, Level 2 spaced segments and the
//! revised full-core rule all stream without changing their semantics.

use crate::extrapolate::{extrapolate, ExtrapolationReport};
use crate::level::Methodology;
use crate::measure::WindowPlacement;
use crate::{MethodError, Result};
use power_workload::RunPhases;

/// Per-(node, window) overlap accumulator state.
#[derive(Debug, Clone, Copy, Default)]
struct WindowAcc {
    weighted: f64,
    weight: f64,
}

/// Streaming evaluation of one methodology's timing rule over a fleet of
/// node slots.
#[derive(Debug, Clone)]
pub struct OnlineLevelMeasurement {
    methodology: Methodology,
    windows: Vec<(f64, f64)>,
    /// `acc[slot][window]`.
    acc: Vec<Vec<WindowAcc>>,
    total_nodes: usize,
    confidence: f64,
}

impl OnlineLevelMeasurement {
    /// Creates an accumulator for `node_slots` metered nodes out of a
    /// machine of `total_nodes`, with the timing windows the methodology
    /// demands for `phases`.
    pub fn new(
        methodology: Methodology,
        phases: &RunPhases,
        placement: WindowPlacement,
        node_slots: usize,
        total_nodes: usize,
        confidence: f64,
    ) -> Result<Self> {
        if node_slots == 0 {
            return Err(MethodError::InvalidConfig {
                field: "node_slots",
                reason: "at least one metered node slot is required",
            });
        }
        if total_nodes < node_slots {
            return Err(MethodError::InvalidConfig {
                field: "total_nodes",
                reason: "machine cannot be smaller than the metered subset",
            });
        }
        let windows = methodology
            .spec()
            .timing
            .windows(phases, placement.fraction())?;
        Ok(OnlineLevelMeasurement {
            methodology,
            windows: windows.clone(),
            acc: vec![vec![WindowAcc::default(); windows.len()]; node_slots],
            total_nodes,
            confidence,
        })
    }

    /// The methodology being evaluated.
    pub fn methodology(&self) -> Methodology {
        self.methodology
    }

    /// The timing windows in force.
    pub fn windows(&self) -> &[(f64, f64)] {
        &self.windows
    }

    /// Folds in one sample for node slot `slot` covering `[t, t + dt)`
    /// at `watts`. Samples may arrive in any order; disjoint samples are
    /// ignored. O(windows) per call, and the window count is 1 or a
    /// small constant for every defined methodology.
    pub fn observe(&mut self, slot: usize, t: f64, dt: f64, watts: f64) -> Result<()> {
        let accs = self.acc.get_mut(slot).ok_or(MethodError::InvalidConfig {
            field: "slot",
            reason: "observation names a node slot outside the measurement",
        })?;
        for (acc, &(from, to)) in accs.iter_mut().zip(&self.windows) {
            let overlap = (to.min(t + dt) - from.max(t)).max(0.0);
            if overlap > 0.0 {
                acc.weighted += watts * overlap;
                acc.weight += overlap;
            }
        }
        Ok(())
    }

    /// The node's contribution under the timing rule: the unweighted
    /// mean over windows of each window's overlap-weighted average —
    /// exactly the batch `measure` reduction. Errors if any window has
    /// seen no samples for this slot.
    pub fn node_average(&self, slot: usize) -> Result<f64> {
        let accs = self.acc.get(slot).ok_or(MethodError::InvalidConfig {
            field: "slot",
            reason: "query names a node slot outside the measurement",
        })?;
        let mut sum = 0.0;
        for acc in accs {
            if !(acc.weight > 0.0) {
                return Err(MethodError::InvalidConfig {
                    field: "window",
                    reason: "a timing window has received no samples",
                });
            }
            sum += acc.weighted / acc.weight;
        }
        Ok(sum / accs.len() as f64)
    }

    /// Extrapolates the streamed subset to the machine with the standard
    /// accuracy assessment.
    pub fn finalize(&self) -> Result<ExtrapolationReport> {
        let per_node: Vec<f64> = (0..self.acc.len())
            .map(|slot| self.node_average(slot))
            .collect::<Result<_>>()?;
        extrapolate(&per_node, self.total_nodes, self.confidence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use power_stats::rng::{seeded, StandardNormal};
    use rand::Rng;

    fn phases() -> RunPhases {
        RunPhases::new(120.0, 3600.0, 120.0).unwrap()
    }

    /// Batch reference: per-window overlap-weighted averages of a dense
    /// series, then the mean across windows.
    fn batch_node_average(series: &[f64], t0: f64, dt: f64, windows: &[(f64, f64)]) -> f64 {
        let mut sum = 0.0;
        for &(from, to) in windows {
            let (mut wsum, mut w) = (0.0, 0.0);
            for (k, &v) in series.iter().enumerate() {
                let t = t0 + k as f64 * dt;
                let overlap = (to.min(t + dt) - from.max(t)).max(0.0);
                wsum += v * overlap;
                w += overlap;
            }
            sum += wsum / w;
        }
        sum / windows.len() as f64
    }

    #[test]
    fn streaming_matches_batch_reduction_for_each_methodology() {
        let dt = 7.0;
        let steps = ((120.0 + 3600.0 + 120.0) / dt) as usize + 1;
        let mut rng = seeded(17);
        let mut gauss = StandardNormal::new();
        for methodology in [
            Methodology::Level1,
            Methodology::Level2,
            Methodology::Level3,
            Methodology::Revised,
        ] {
            let series: Vec<Vec<f64>> = (0..3)
                .map(|_| {
                    (0..steps)
                        .map(|_| 400.0 * (1.0 + 0.02 * gauss.sample(&mut rng)))
                        .collect()
                })
                .collect();
            let mut online = OnlineLevelMeasurement::new(
                methodology,
                &phases(),
                WindowPlacement::Middle,
                3,
                100,
                0.95,
            )
            .unwrap();
            // Stream in a scrambled order to prove order-insensitivity.
            let mut order: Vec<(usize, usize)> = (0..3)
                .flat_map(|s| (0..steps).map(move |k| (s, k)))
                .collect();
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            for (slot, k) in order {
                online
                    .observe(slot, k as f64 * dt, dt, series[slot][k])
                    .unwrap();
            }
            for (slot, node_series) in series.iter().enumerate() {
                let want = batch_node_average(node_series, 0.0, dt, online.windows());
                let got = online.node_average(slot).unwrap();
                assert!(
                    (got - want).abs() <= 1e-9 * want,
                    "{methodology:?} slot {slot}: {got} vs {want}"
                );
            }
            let report = online.finalize().unwrap();
            assert!((report.node_mean_w - 400.0).abs() < 10.0);
        }
    }

    #[test]
    fn uncovered_window_is_an_error() {
        let mut online = OnlineLevelMeasurement::new(
            Methodology::Level2,
            &phases(),
            WindowPlacement::Middle,
            1,
            10,
            0.95,
        )
        .unwrap();
        // Level 2 uses spaced segments; cover only the first window.
        let (from, to) = online.windows()[0];
        online.observe(0, from, to - from, 400.0).unwrap();
        assert!(online.node_average(0).is_err());
    }

    #[test]
    fn construction_validation() {
        assert!(OnlineLevelMeasurement::new(
            Methodology::Level1,
            &phases(),
            WindowPlacement::Middle,
            0,
            10,
            0.95
        )
        .is_err());
        assert!(OnlineLevelMeasurement::new(
            Methodology::Level1,
            &phases(),
            WindowPlacement::Middle,
            20,
            10,
            0.95
        )
        .is_err());
        assert!(OnlineLevelMeasurement::new(
            Methodology::Revised,
            &phases(),
            WindowPlacement::Middle,
            2,
            10,
            0.95
        )
        .is_ok());
    }
}

//! Machine-fraction rules: how many nodes must be metered.
//!
//! Aspect 2 of the methodology (paper Table 1), plus the paper's revision:
//!
//! * **Level 1** — the greater of 1/64 of the compute subsystem or enough
//!   nodes to aggregate 2 kW;
//! * **Level 2** — the greater of 1/8 or 10 kW;
//! * **Level 3** — every node;
//! * **Revised** — `max(16 nodes, 10% of nodes)`: the paper's concluding
//!   recommendation, derived from the Section 4 statistics so that the
//!   extrapolation reaches ~1% accuracy at 95% confidence even at one
//!   level more variability (sigma/mu up to ~5%) than observed.

use serde::{Deserialize, Serialize};

use crate::{MethodError, Result};

/// A machine-fraction rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FractionRule {
    /// A minimum fraction of nodes plus a minimum aggregate power floor.
    FractionWithPowerFloor {
        /// Minimum fraction of the compute nodes (e.g. 1/64).
        min_fraction: f64,
        /// Minimum aggregate measured power in watts (e.g. 2000).
        min_power_w: f64,
    },
    /// Every compute node (Level 3).
    All,
    /// The revised rule: at least `min_nodes`, or `min_fraction` of the
    /// machine, whichever is greater.
    NodesOrFraction {
        /// Absolute node floor (16 in the paper's recommendation).
        min_nodes: usize,
        /// Fractional floor (10% in the paper's recommendation).
        min_fraction: f64,
    },
}

impl FractionRule {
    /// The Level 1 rule: max(1/64 of nodes, 2 kW).
    pub fn level1() -> Self {
        FractionRule::FractionWithPowerFloor {
            min_fraction: 1.0 / 64.0,
            min_power_w: 2_000.0,
        }
    }

    /// The Level 2 rule: max(1/8 of nodes, 10 kW).
    pub fn level2() -> Self {
        FractionRule::FractionWithPowerFloor {
            min_fraction: 1.0 / 8.0,
            min_power_w: 10_000.0,
        }
    }

    /// The paper's revised rule: max(16 nodes, 10% of nodes).
    pub fn revised() -> Self {
        FractionRule::NodesOrFraction {
            min_nodes: 16,
            min_fraction: 0.10,
        }
    }

    /// Minimum number of nodes to meter on a machine of `total_nodes`
    /// whose nodes draw about `est_node_power_w` each.
    pub fn required_nodes(&self, total_nodes: usize, est_node_power_w: f64) -> Result<usize> {
        if total_nodes == 0 {
            return Err(MethodError::InvalidConfig {
                field: "total_nodes",
                reason: "machine must have at least one node",
            });
        }
        match *self {
            FractionRule::FractionWithPowerFloor {
                min_fraction,
                min_power_w,
            } => {
                if !(est_node_power_w > 0.0) {
                    return Err(MethodError::InvalidConfig {
                        field: "est_node_power_w",
                        reason: "node power estimate must be positive",
                    });
                }
                let by_fraction = (total_nodes as f64 * min_fraction).ceil() as usize;
                let by_power = (min_power_w / est_node_power_w).ceil() as usize;
                Ok(by_fraction.max(by_power).max(1).min(total_nodes))
            }
            FractionRule::All => Ok(total_nodes),
            FractionRule::NodesOrFraction {
                min_nodes,
                min_fraction,
            } => {
                let by_fraction = (total_nodes as f64 * min_fraction).ceil() as usize;
                Ok(min_nodes.max(by_fraction).max(1).min(total_nodes))
            }
        }
    }

    /// Whether `metered` nodes with `aggregate_power_w` satisfies the rule
    /// on a machine of `total_nodes`.
    pub fn is_satisfied(&self, total_nodes: usize, metered: usize, aggregate_power_w: f64) -> bool {
        match *self {
            FractionRule::FractionWithPowerFloor {
                min_fraction,
                min_power_w,
            } => {
                let frac_ok = metered as f64 >= (total_nodes as f64 * min_fraction).ceil();
                let power_ok = aggregate_power_w >= min_power_w;
                // The rule is "the greater of": both floors must be met,
                // except a full census always satisfies it.
                (frac_ok && power_ok) || metered == total_nodes
            }
            FractionRule::All => metered == total_nodes,
            FractionRule::NodesOrFraction {
                min_nodes,
                min_fraction,
            } => {
                metered == total_nodes
                    || (metered >= min_nodes
                        && metered as f64 >= (total_nodes as f64 * min_fraction).ceil())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level1_paper_worked_examples() {
        // Section 4 intro: 210 nodes -> "at least 4 nodes"; 18688 -> 292.
        // (The paper's illustration considers the 1/64 fraction alone; use
        // 600 W nodes so the 2 kW floor does not dominate at n = 4.)
        let rule = FractionRule::level1();
        assert_eq!(rule.required_nodes(210, 600.0).unwrap(), 4);
        assert_eq!(rule.required_nodes(18_688, 600.0).unwrap(), 292);
    }

    #[test]
    fn level1_power_floor_dominates_for_low_power_nodes() {
        // 90 W nodes: 2 kW floor needs 23 nodes even on a small machine.
        let rule = FractionRule::level1();
        assert_eq!(rule.required_nodes(640, 90.0).unwrap(), 23);
    }

    #[test]
    fn level2_is_eighth_and_10kw() {
        let rule = FractionRule::level2();
        assert_eq!(rule.required_nodes(1024, 400.0).unwrap(), 128);
        // Power floor: 10 kW / 400 W = 25 > 1024/8? No, 128 > 25.
        assert_eq!(rule.required_nodes(64, 400.0).unwrap(), 25);
    }

    #[test]
    fn level3_all_nodes() {
        assert_eq!(FractionRule::All.required_nodes(5000, 1.0).unwrap(), 5000);
        assert!(FractionRule::All.is_satisfied(5000, 5000, 0.0));
        assert!(!FractionRule::All.is_satisfied(5000, 4999, 1e9));
    }

    #[test]
    fn revised_rule_paper_recommendation() {
        // "require that 16 nodes be measured, or 10% of nodes, whichever
        // is larger."
        let rule = FractionRule::revised();
        assert_eq!(rule.required_nodes(100, 400.0).unwrap(), 16);
        assert_eq!(rule.required_nodes(160, 400.0).unwrap(), 16);
        assert_eq!(rule.required_nodes(161, 400.0).unwrap(), 17);
        assert_eq!(rule.required_nodes(10_000, 400.0).unwrap(), 1_000);
        // Tiny machine: census.
        assert_eq!(rule.required_nodes(10, 400.0).unwrap(), 10);
    }

    #[test]
    fn requirement_never_exceeds_machine() {
        for rule in [
            FractionRule::level1(),
            FractionRule::level2(),
            FractionRule::revised(),
            FractionRule::All,
        ] {
            for &n in &[1usize, 3, 64, 1000] {
                let req = rule.required_nodes(n, 50.0).unwrap();
                assert!(req >= 1 && req <= n, "{rule:?} n={n} req={req}");
            }
        }
    }

    #[test]
    fn satisfaction_checks() {
        let l1 = FractionRule::level1();
        // 1024-node machine, 400 W nodes: need 16 nodes AND 2 kW.
        assert!(l1.is_satisfied(1024, 16, 6_400.0));
        assert!(!l1.is_satisfied(1024, 15, 6_000.0)); // below 1/64
        assert!(!l1.is_satisfied(1024, 16, 1_900.0)); // below 2 kW
        assert!(l1.is_satisfied(1024, 1024, 0.0)); // census always ok

        let rev = FractionRule::revised();
        assert!(rev.is_satisfied(100, 16, 0.0));
        assert!(!rev.is_satisfied(100, 15, 1e9));
        assert!(!rev.is_satisfied(1000, 50, 1e9)); // below 10%
        assert!(rev.is_satisfied(1000, 100, 0.0));
    }

    #[test]
    fn invalid_inputs() {
        assert!(FractionRule::level1().required_nodes(0, 400.0).is_err());
        assert!(FractionRule::level1().required_nodes(100, 0.0).is_err());
        assert!(FractionRule::level1().required_nodes(100, -5.0).is_err());
        // Power estimate irrelevant for node-count rules.
        assert!(FractionRule::revised().required_nodes(100, -5.0).is_ok());
    }
}

//! Live campaign: meter nodes one at a time and stop the moment the
//! accuracy target is met — the streaming analogue of the paper's
//! Table 5 sample-size plan.
//!
//! An operator planning a submission does not need to meter the plan's
//! node count up front: a pilot fixes the fleet's spread, then the
//! sequential rule re-evaluates the Eq. 1-2 confidence interval after
//! every accepted node and stops as soon as the relative accuracy drops
//! under the target.
//!
//! Run with: `cargo run --release --example live_campaign`

use hpcpower::meter::device::MeterModel;
use hpcpower::prelude::*;
use hpcpower::sim::engine::MeterScope;
use hpcpower::sim::systems;

fn main() {
    // A 200-node slice of the Calcul Québec machine under in-core HPL.
    let preset = systems::calcul_quebec().with_total_nodes(200);
    let cluster = Cluster::build(preset.cluster_spec.clone()).expect("preset is valid");
    let sim_config = SimulationConfig {
        dt: 10.0,
        noise_sigma: 0.01,
        common_noise_sigma: 0.003,
        seed: 99,
        threads: std::thread::available_parallelism().map_or(4, |p| p.get()),
    };
    let sim = Simulator::new(
        &cluster,
        preset.workload.workload(),
        preset.balance,
        sim_config,
    )
    .expect("simulator");

    // Target: 1% relative accuracy at 95% confidence, empirical spread
    // learned from a 6-node pilot, PDU-grade meters, streaming through
    // the watermarked ingestion pipeline.
    let mut cfg = LiveCampaignConfig::table5(0.01, 0.03, MeterModel::pdu_grade());
    cfg.cv = CvAssumption::Empirical;
    cfg.pilot_nodes = 6;
    cfg.scope = MeterScope::Wall;

    let report = run_live_campaign(&sim, &cfg).expect("campaign");

    println!(
        "Campaign over {} ({} nodes):",
        preset.name, report.population
    );
    match report.stopped_at {
        Some(n) => println!("  stopping rule fired after {n} metered nodes"),
        None => println!("  rule never fired — full census"),
    }
    println!(
        "  mean node power {:.1} W, 95% CI [{:.1}, {:.1}] W",
        report.mean_node_w,
        report.ci.lower(),
        report.ci.upper()
    );
    println!(
        "  achieved accuracy {:.2}% (target {:.2}%)",
        report.relative_accuracy * 100.0,
        cfg.lambda * 100.0
    );
    println!(
        "  extrapolated machine power {:.1} kW",
        report.reported_power_w / 1000.0
    );
    println!("  ingest: {}", report.ingest);
}

//! Auditing a gamed submission.
//!
//! A site submits a suspiciously good Level 1 number. We re-derive what an
//! honest measurement would report, scan for the exploits the paper
//! documents (optimal interval, VID cherry-picking), and check the
//! submission against both the Level 1 rules and the paper's revised rules.
//!
//! Run with: `cargo run --release --example audit_submission`

use hpcpower::method::gaming::{optimal_interval, vid_bias};
use hpcpower::method::level::Methodology;
use hpcpower::method::measure::{measure, MeasurementPlan, NodeSelection, WindowPlacement};
use hpcpower::method::report::Submission;
use hpcpower::method::validate::validate;
use hpcpower::method::window::TimingRule;
use hpcpower::sim::engine::{MeterScope, SimulationConfig, Simulator};
use hpcpower::sim::systems;
use hpcpower::sim::Cluster;

fn main() {
    let preset = systems::lcsc();
    let cluster = Cluster::build(preset.cluster_spec.clone()).expect("preset is valid");
    let workload = preset.workload.workload();
    let phases = workload.phases();
    let sim_config = SimulationConfig {
        dt: 5.0,
        noise_sigma: 0.01,
        common_noise_sigma: 0.003,
        seed: 1337,
        threads: std::thread::available_parallelism().map_or(4, |p| p.get()),
    };

    // The submitter's number: latest legal window (where the trailing
    // matrix has shrunk and power is lowest) + lowest-VID nodes.
    let gamed_plan = MeasurementPlan {
        selection: NodeSelection::LowestVid,
        placement: WindowPlacement::Latest,
        ..MeasurementPlan::honest(Methodology::Level1, 5)
    };
    let gamed = measure(&cluster, workload, preset.balance, sim_config, &gamed_plan)
        .expect("plan is valid");
    let submission = Submission::from_measurement(preset.name, &gamed);

    // Our honest re-measurement.
    let honest = measure(
        &cluster,
        workload,
        preset.balance,
        sim_config,
        &MeasurementPlan::honest(Methodology::Revised, 6),
    )
    .expect("plan is valid");

    println!("Submission under audit: {}", submission.system);
    println!(
        "  claimed:  {:.1} kW -> {:.3} GFLOPS/W",
        submission.reported_power_w / 1000.0,
        submission.gflops_per_watt()
    );
    println!(
        "  honest:   {:.1} kW -> {:.3} GFLOPS/W",
        honest.reported_power_w / 1000.0,
        honest.flops_per_watt() / 1e9
    );
    let overstatement = honest.reported_power_w / submission.reported_power_w - 1.0;
    println!("  power understated by {:.1}%", overstatement * 100.0);
    println!();

    // Rule check: the gamed *window* is perfectly legal under Level 1
    // (only the 2 kW floor trips here, because cherry-picked low-power
    // nodes in the low-power tail aggregate below it) ...
    let v1 = validate(&submission, &Methodology::Level1.spec(), &phases);
    println!("Level 1 rule check: {} violation(s): {v1:?}", v1.len());
    // ... while the revised rules reject it structurally.
    let v2 = validate(&submission, &Methodology::Revised.spec(), &phases);
    println!("Revised rule check: {} violations:", v2.len());
    for v in &v2 {
        println!("  - {v:?}");
    }
    println!();

    // Forensics 1: how much was the interval worth on this system?
    let sim = Simulator::new(&cluster, workload, preset.balance, sim_config).expect("config valid");
    let trace = sim.system_trace(MeterScope::Wall).expect("trace");
    let scan = optimal_interval(&trace, &phases, &TimingRule::level1(), 201)
        .expect("scan parameters valid");
    println!(
        "Interval forensics: best legal window [{:.0}, {:.0}]s reads {:.1} kW vs\n\
         honest full-core {:.1} kW -> the interval alone is worth {:.1}%",
        scan.best_window.0,
        scan.best_window.1,
        scan.best_w / 1000.0,
        scan.honest_w / 1000.0,
        scan.gaming_gain() * 100.0
    );

    // Forensics 2: node screening. At the tuned fixed voltage the VID must
    // not matter; if the submitter ran default voltages, screening pays.
    let cs = systems::LcscCaseStudy::new();
    let mut default_spec = cs.cluster_spec.clone();
    default_spec.governor = cs.default_governor.clone();
    let default_cluster = Cluster::build(default_spec).expect("valid");
    let bias = vid_bias(&default_cluster, 16, 60.0).expect("valid sample");
    println!(
        "VID forensics: 16 lowest-VID nodes draw {:.1} W vs fair {:.1} W\n\
         ({:.2}% understatement available from screening at default voltages)",
        bias.cherry_picked_w,
        bias.fair_w,
        bias.bias * 100.0
    );
}

//! Multi-site survey: reproduce the paper's cross-system characterization
//! on every calibrated preset — trace shape, per-node distribution,
//! sigma/mu, and the sample size each machine would need.
//!
//! Run with: `cargo run --release --example site_survey`

use hpcpower::sim::engine::{SimulationConfig, Simulator};
use hpcpower::sim::systems::SystemPreset;
use hpcpower::sim::Cluster;
use hpcpower::stats::histogram::{Binning, Histogram};
use hpcpower::stats::normality::assess_normality;
use hpcpower::stats::sample_size::SampleSizePlan;
use hpcpower::stats::summary::Summary;

fn main() {
    let sim_config = SimulationConfig {
        dt: 11.3,
        noise_sigma: 0.01,
        common_noise_sigma: 0.002,
        seed: 8,
        threads: std::thread::available_parallelism().map_or(4, |p| p.get()),
    };

    println!(
        "{:<16} {:>6} {:>10} {:>9} {:>8} {:>8} {:>11} {:>9}",
        "system", "nodes", "mean (W)", "sigma", "cv", "QQ corr", "normal-ok?", "n for 1%"
    );

    for preset in SystemPreset::variability_presets() {
        // Simulate the metered partition (capped for a quick survey).
        let n = preset.measured_nodes.min(512);
        let population = preset.targets.population as u64;
        let scoped = preset.scope;
        let preset = preset.with_total_nodes(n);
        let cluster = Cluster::build(preset.cluster_spec.clone()).expect("preset valid");
        let workload = preset.workload.workload();
        let sim =
            Simulator::new(&cluster, workload, preset.balance, sim_config).expect("config valid");
        let phases = workload.phases();
        let averages = sim
            .node_averages(
                phases.core_start() + 0.1 * phases.core(),
                phases.core_end(),
                scoped,
            )
            .expect("window overlaps run");

        let s = Summary::from_slice(&averages);
        let cv = s.coefficient_of_variation().expect("nonzero mean");
        let normality = assess_normality(&averages).expect("enough nodes");
        let plan = SampleSizePlan::new(0.95, 0.01, cv).expect("valid");
        println!(
            "{:<16} {:>6} {:>10.2} {:>9.2} {:>7.2}% {:>8.3} {:>11} {:>9}",
            preset.name,
            n,
            s.mean(),
            s.sample_std_dev().unwrap(),
            cv * 100.0,
            normality.qq_corr,
            if normality.procedure_is_safe() {
                "yes"
            } else {
                "NO"
            },
            plan.required_nodes(population).unwrap(),
        );
    }

    println!();
    println!("Per-node power distribution, TU Dresden (FIRESTARTER):");
    let preset = SystemPreset::variability_presets()
        .into_iter()
        .find(|p| p.name == "TU Dresden")
        .expect("preset exists");
    let cluster = Cluster::build(preset.cluster_spec.clone()).expect("valid");
    let workload = preset.workload.workload();
    let sim = Simulator::new(&cluster, workload, preset.balance, sim_config).expect("config valid");
    let phases = workload.phases();
    let averages = sim
        .node_averages(
            phases.core_start() + 0.1 * phases.core(),
            phases.core_end(),
            preset.scope,
        )
        .expect("window overlaps run");
    let hist = Histogram::new(&averages, Binning::Fixed(14)).expect("non-empty");
    print!("{}", hist.render_ascii(50));
    println!();
    println!(
        "All systems' per-node power is near-normal with sigma/mu in the\n\
         1.5-3% band — the empirical basis for the paper's Table 5 and the\n\
         max(16 nodes, 10%) submission rule."
    );
}

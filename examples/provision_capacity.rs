//! Power provisioning from a measured node sample — the "operational
//! improvements and power capping" use case the paper's introduction
//! lists, in the style of Fan/Weber/Barroso (the related-work baseline).
//!
//! Run with: `cargo run --release --example provision_capacity`

use hpcpower::method::provisioning::{provisioning_report, stranded_capacity};
use hpcpower::sim::engine::{MeterScope, SimulationConfig, Simulator};
use hpcpower::sim::systems;
use hpcpower::sim::Cluster;
use hpcpower::stats::rng::seeded;
use hpcpower::stats::sampling::sample_without_replacement;

const NAMEPLATE_NODE_W: f64 = 520.0;
const EXCEEDANCE: f64 = 0.001; // 99.9% of intervals under the breaker

fn main() {
    // A TU-Dresden-class machine under full stress (FIRESTARTER is the
    // worst-case power workload, which is what capacity must be sized for).
    let preset = systems::tu_dresden();
    let cluster = Cluster::build(preset.cluster_spec.clone()).expect("preset valid");
    let workload = preset.workload.workload();
    let sim = Simulator::new(
        &cluster,
        workload,
        preset.balance,
        SimulationConfig {
            dt: 7.3,
            noise_sigma: 0.01,
            common_noise_sigma: 0.002,
            seed: 77,
            threads: std::thread::available_parallelism().map_or(4, |p| p.get()),
        },
    )
    .expect("config valid");
    let phases = workload.phases();
    let all = sim
        .node_averages(
            phases.core_start() + 0.1 * phases.core(),
            phases.core_end(),
            MeterScope::Wall,
        )
        .expect("window overlaps run");

    // Revised-rule sample: max(16, 10% of 210) = 21 nodes.
    let mut rng = seeded(5);
    let ids = sample_without_replacement(&mut rng, all.len(), 21).expect("valid sample");
    let sample: Vec<f64> = ids.iter().map(|&i| all[i]).collect();

    let report = provisioning_report(&sample, 210, EXCEEDANCE, NAMEPLATE_NODE_W)
        .expect("sample is large enough");
    println!(
        "Measured: {:.1} W/node mean, {:.1} W sigma (21-node revised-rule sample)",
        report.node_mean_w, report.node_sigma_w
    );
    println!(
        "Capacity for 210 nodes at {:.1}% exceedance: {:.1} kW",
        EXCEEDANCE * 100.0,
        report.capacity_w / 1000.0
    );
    println!(
        "Nameplate plan ({NAMEPLATE_NODE_W:.0} W/node):        {:.1} kW",
        report.nameplate_capacity_w / 1000.0
    );
    println!(
        "Stranded by nameplate provisioning:      {:.1}%",
        report.stranded_fraction * 100.0
    );
    let extra = stranded_capacity(&sample, 210, EXCEEDANCE, NAMEPLATE_NODE_W)
        .expect("sample is large enough");
    println!(
        "The same breakers could host {extra} additional nodes ({:.0}% more machine).",
        extra as f64 / 210.0 * 100.0
    );
    println!();
    println!("This is why the paper's accuracy work matters beyond rankings: a");
    println!("20% measurement error is a 20% error in provisioned capacity and");
    println!("in the electricity line of the TCO.");
}

//! Procurement planning: how many nodes must we meter, and what does the
//! answer cost us if we get it wrong?
//!
//! The paper's Section 4 workflow: take a small pilot sample, estimate
//! sigma/mu, size the final sample with Equation 5, then check the achieved
//! accuracy — and translate the residual power uncertainty into electricity
//! cost for a Total Cost of Ownership estimate (Section 1 notes a 20% power
//! error becomes a 20% electricity-cost error).
//!
//! Run with: `cargo run --release --example plan_measurement`

use hpcpower::method::extrapolate::extrapolate;
use hpcpower::sim::engine::{MeterScope, SimulationConfig, Simulator};
use hpcpower::sim::systems;
use hpcpower::sim::Cluster;
use hpcpower::stats::rng::seeded;
use hpcpower::stats::sample_size::{sample_size_from_pilot, SampleSizePlan};
use hpcpower::stats::sampling::sample_without_replacement;
use hpcpower::stats::summary::Summary;

const ELECTRICITY_EUR_PER_KWH: f64 = 0.18;
const LIFETIME_YEARS: f64 = 5.0;

fn main() {
    // We are procuring an LRZ-class machine (9216 nodes in the paper's
    // Table 4) and have a 512-node test partition to play with.
    let preset = systems::lrz().with_total_nodes(512);
    let population = 9_216usize;
    let cluster = Cluster::build(preset.cluster_spec.clone()).expect("preset is valid");
    let workload = preset.workload.workload();
    let sim_config = SimulationConfig {
        dt: 7.3,
        noise_sigma: 0.01,
        common_noise_sigma: 0.002,
        seed: 2026,
        threads: std::thread::available_parallelism().map_or(4, |p| p.get()),
    };
    let sim = Simulator::new(&cluster, workload, preset.balance, sim_config)
        .expect("simulator config valid");
    let phases = workload.phases();
    let (from, to) = (phases.core_start() + 0.1 * phases.core(), phases.core_end());
    let all = sim
        .node_averages(from, to, MeterScope::Wall)
        .expect("window overlaps run");

    // Step 1: pilot sample of 10 nodes (the paper's suggested n = 10).
    let mut rng = seeded(99);
    let pilot_ids = sample_without_replacement(&mut rng, all.len(), 10).expect("valid sample");
    let pilot: Vec<f64> = pilot_ids.iter().map(|&i| all[i]).collect();
    let pilot_summary = Summary::from_slice(&pilot);
    println!(
        "Pilot (n = 10): mean = {:.2} W, sigma/mu = {:.2}%",
        pilot_summary.mean(),
        pilot_summary.coefficient_of_variation().unwrap() * 100.0
    );

    // Step 2: size the real campaign for 1% accuracy at 95% confidence.
    let n_final = sample_size_from_pilot(&pilot, 0.95, 0.01, population as u64)
        .expect("pilot is large enough");
    println!("Equation 5 says: meter {n_final} of {population} nodes for ±1% at 95%.");

    // Compare with planning from the paper's recommended sigma/mu range.
    for cv in [0.015, 0.025, 0.05] {
        let plan = SampleSizePlan::new(0.95, 0.01, cv).expect("valid plan");
        println!(
            "  (planning at sigma/mu = {:.1}% instead: {} nodes)",
            cv * 100.0,
            plan.required_nodes(population as u64).unwrap()
        );
    }

    // Step 3: run the final campaign and assess.
    let final_ids =
        sample_without_replacement(&mut rng, all.len(), n_final as usize).expect("valid sample");
    let sample: Vec<f64> = final_ids.iter().map(|&i| all[i]).collect();
    let report = extrapolate(&sample, population, 0.95).expect("sample is large enough");
    println!(
        "Final campaign: full-system estimate {:.1} kW, 95% CI [{:.1}, {:.1}] kW (±{:.2}%)",
        report.estimate_w / 1000.0,
        report.ci_lower_w / 1000.0,
        report.ci_upper_w / 1000.0,
        report.relative_accuracy * 100.0
    );

    // Step 4: what the residual uncertainty means for TCO.
    let hours = LIFETIME_YEARS * 365.25 * 24.0;
    let cost = |watts: f64| watts / 1000.0 * hours * ELECTRICITY_EUR_PER_KWH;
    println!(
        "{LIFETIME_YEARS:.0}-year electricity cost: {:.2} M EUR, uncertain by ±{:.0} k EUR",
        cost(report.estimate_w) / 1e6,
        (cost(report.ci_upper_w) - cost(report.estimate_w)) / 1e3
    );
    println!(
        "Had we extrapolated from a 20%-biased Level 1 window instead, the\n\
         cost estimate would be off by ±{:.2} M EUR — the paper's TCO argument.",
        cost(report.estimate_w) * 0.20 / 1e6
    );
}

//! Quickstart: measure a simulated supercomputer's power the way a
//! Green500 submitter would, at every methodology level, and see why the
//! paper's revised rules matter.
//!
//! Run with: `cargo run --release --example quickstart`

use hpcpower::method::level::Methodology;
use hpcpower::method::measure::{measure, MeasurementPlan, WindowPlacement};
use hpcpower::method::report::Submission;
use hpcpower::sim::engine::SimulationConfig;
use hpcpower::sim::systems;
use hpcpower::sim::Cluster;

fn main() {
    // The L-CSC cluster: 160 nodes, four GPUs each, 1.5-hour in-core HPL
    // run — the Green500 #1 system the paper studies in Sections 3 and 5.
    let preset = systems::lcsc();
    let cluster = Cluster::build(preset.cluster_spec.clone()).expect("preset is valid");
    let workload = preset.workload.workload();

    let sim_config = SimulationConfig {
        dt: 5.0,
        noise_sigma: 0.01,
        common_noise_sigma: 0.003,
        seed: 42,
        threads: std::thread::available_parallelism().map_or(4, |p| p.get()),
    };

    println!(
        "System: {} ({} nodes), workload: {}",
        preset.name,
        cluster.len(),
        workload.name()
    );
    println!();
    println!(
        "{:<16} {:>7} {:>12} {:>10} {:>10}",
        "methodology", "nodes", "power (kW)", "GFLOPS/W", "accuracy"
    );

    for methodology in Methodology::all() {
        // An honest submitter: random node subset, window in the middle.
        let plan = MeasurementPlan::honest(methodology, 7);
        let m = measure(&cluster, workload, preset.balance, sim_config, &plan)
            .expect("measurement plan is valid");
        let submission = Submission::from_measurement(preset.name, &m);
        println!(
            "{:<16} {:>7} {:>12.1} {:>10.3} {:>9}",
            methodology.to_string(),
            m.metered_nodes.len(),
            m.reported_power_w / 1000.0,
            submission.gflops_per_watt(),
            m.assessment
                .as_ref()
                .map(|a| format!("±{:.2}%", a.relative_accuracy * 100.0))
                .unwrap_or_else(|| "-".into()),
        );
    }

    println!();
    println!("Now the problem the paper fixes: two honest Level 1 submitters");
    println!("who place their 20% window at different (legal) spots:");
    for (label, placement) in [
        ("early window", WindowPlacement::Earliest),
        ("late window", WindowPlacement::Latest),
    ] {
        let plan = MeasurementPlan {
            placement,
            ..MeasurementPlan::honest(Methodology::Level1, 7)
        };
        let m = measure(&cluster, workload, preset.balance, sim_config, &plan)
            .expect("measurement plan is valid");
        println!(
            "  {label:<13}: {:.1} kW -> {:.3} GFLOPS/W",
            m.reported_power_w / 1000.0,
            m.flops_per_watt() / 1e9
        );
    }
    println!();
    println!("The revised methodology (full core phase, max(16, 10%) nodes)");
    println!("makes that window choice irrelevant — which is exactly what the");
    println!("Green500 and Top500 adopted from this paper in late 2015.");
}
